package dashboard

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"dio/internal/obs"
	"dio/internal/sandbox"
	"dio/internal/tsdb"
)

// renderFixture builds a store with n gauge metrics (g0..g<n-1>, one
// series each, 30 one-minute samples) and a dashboard with one panel per
// metric.
func renderFixture(t testing.TB, n int) (*sandbox.Executor, *Dashboard, time.Time) {
	t.Helper()
	db := tsdb.New()
	base := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	d := &Dashboard{Title: "fixture"}
	for p := 0; p < n; p++ {
		name := fmt.Sprintf("g%d", p)
		ls := tsdb.FromMap(map[string]string{"__name__": name})
		for i := 0; i < 30; i++ {
			if err := db.Append(ls, base.Add(time.Duration(i)*time.Minute).UnixMilli(), float64(i*(p+1))); err != nil {
				t.Fatal(err)
			}
		}
		d.Panels = append(d.Panels, Panel{Title: name, Query: name, Kind: KindTimeSeries})
	}
	return sandbox.New(db, sandbox.DefaultLimits()), d, base.Add(29 * time.Minute)
}

// TestRendererMatchesSerialOutput: parallel rendering must assemble panels
// in declaration order, byte-identical regardless of worker count.
func TestRendererMatchesSerialOutput(t *testing.T) {
	exec, d, end := renderFixture(t, 8)
	serial, err := NewRenderer(exec, 1).Render(context.Background(), d, end, 20*time.Minute, time.Minute, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := NewRenderer(exec, workers).Render(context.Background(), d, end, 20*time.Minute, time.Minute, 40)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par != serial {
			t.Errorf("workers=%d: output differs from serial rendering", workers)
		}
	}
	for i := range d.Panels {
		if !strings.Contains(serial, fmt.Sprintf("-- g%d ", i)) {
			t.Errorf("missing panel g%d in output", i)
		}
	}
}

// TestRendererPanelErrorWins: when one panel genuinely fails, the reported
// error must name that panel, not a sibling's cascade cancellation.
func TestRendererPanelErrorWins(t *testing.T) {
	exec, d, end := renderFixture(t, 6)
	d.Panels[3].Query = "sum(" // parse error
	_, err := NewRenderer(exec, 2).Render(context.Background(), d, end, 20*time.Minute, time.Minute, 40)
	if err == nil {
		t.Fatal("expected panel error")
	}
	if !strings.Contains(err.Error(), `panel "g3"`) {
		t.Errorf("error does not name the failing panel: %v", err)
	}
}

// TestRendererMidRenderCancellation: cancelling the caller's context while
// panels are in flight must abort the render promptly with a context
// error, with no goroutine left writing into the result (the -race run of
// this test is the regression guard for the pool's shutdown path).
func TestRendererMidRenderCancellation(t *testing.T) {
	exec, d, end := renderFixture(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := NewRenderer(exec, 2).Render(ctx, d, end, 20*time.Minute, time.Second, 40)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		// The cancel races panel completion: a finished render is fine, a
		// failed one must be a context error.
		if err != nil && !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Errorf("expected context cancellation, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("render did not return after cancellation")
	}
}

// TestRendererInstrumented: panel latency and outcome metrics register and
// accumulate.
func TestRendererInstrumented(t *testing.T) {
	exec, d, end := renderFixture(t, 4)
	d.Panels[2].Query = "bogus_metric_that_parses" // empty result is still ok
	reg := obs.NewRegistry()
	r := NewRenderer(exec, 4)
	r.Instrument(reg)
	if _, err := r.Render(context.Background(), d, end, 20*time.Minute, time.Minute, 40); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.FormatText(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	if !strings.Contains(dump, "dio_dashboard_panel_render_seconds") {
		t.Error("panel latency histogram not exported")
	}
	if !strings.Contains(dump, `dio_dashboard_panels_total{outcome="ok"} 4`) {
		t.Errorf("expected 4 ok panels in export:\n%s", dump)
	}
}
