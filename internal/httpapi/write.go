package httpapi

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"dio/internal/ingest"
)

// maxWriteBody bounds a single remote-write request body (before the
// codec's own series/sample limits apply).
const maxWriteBody = 64 << 20

// WithIngest attaches the durable ingest store and mounts the
// remote-write endpoint: POST /api/v1/write accepts the binary
// (application/x-dio-write) and JSON codecs, appends through the WAL, and
// acknowledges only after the batch is durable.
func WithIngest(store *ingest.Store) Option {
	return func(s *Server) {
		s.ingest = store
		s.mux.HandleFunc("POST /api/v1/write", s.handleWrite)
	}
}

// writeResponse is the POST /api/v1/write accounting envelope.
type writeResponse struct {
	Status     string `json:"status"`
	Appended   int    `json:"appended"`
	OutOfOrder int    `json:"outOfOrder"`
	Duplicate  int    `json:"duplicate"`
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	contentType := r.Header.Get("Content-Type")
	if i := strings.IndexByte(contentType, ';'); i >= 0 {
		contentType = strings.TrimSpace(contentType[:i])
	}
	body := http.MaxBytesReader(w, r.Body, maxWriteBody)
	batch, err := ingest.DecodeWriteRequest(body, contentType)
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		s.writeErr(w, code, fmt.Errorf("bad write request: %w", err))
		return
	}
	st, err := s.ingest.Append(batch)
	if err != nil {
		// The batch is NOT durable: the client must not assume it landed.
		s.writeErr(w, http.StatusInternalServerError, fmt.Errorf("append failed: %w", err))
		return
	}
	s.writeJSON(w, http.StatusOK, writeResponse{
		Status:     "success",
		Appended:   st.Appended,
		OutOfOrder: st.OutOfOrder,
		Duplicate:  st.Duplicate,
	})
}
