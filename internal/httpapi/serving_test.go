package httpapi_test

import (
	"context"
	"net/http"
	"testing"
	"time"

	"dio/internal/core"
	"dio/internal/feedback"
	"dio/internal/httpapi"
	"dio/internal/llm"
	"dio/internal/servecache"
	"dio/internal/testenv"
)

// newServingServer builds the handler with the answer-cache front (and an
// optional compute hook for gate tests) over the shared fixture.
func newServingServer(t *testing.T, gate *servecache.Gate, hook func()) http.Handler {
	t.Helper()
	cat, db, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4"), Retriever: r})
	if err != nil {
		t.Fatal(err)
	}
	front := servecache.NewFront(servecache.FrontConfig[*core.Answer]{
		Size: 64, TTL: time.Hour,
		Version: cat.Version, Head: db.HeadTime,
		Compute: func(ctx context.Context, q string) (*core.Answer, error) {
			if hook != nil {
				hook()
			}
			return cp.Ask(ctx, q)
		},
	})
	tracker := feedback.NewTracker([]string{"alice"}, nil)
	return httpapi.New(cp, tracker, nil, httpapi.WithServing(front, gate))
}

func TestAskCacheHeader(t *testing.T) {
	h := newServingServer(t, nil, nil)
	const q = "How many PDU sessions are currently active?"

	w, out := do(t, h, "POST", "/api/v1/ask", map[string]any{"question": q})
	if w.Code != 200 {
		t.Fatalf("ask = %d %v", w.Code, out)
	}
	if got := w.Header().Get(httpapi.CacheHeader); got != "miss" {
		t.Fatalf("first ask %s = %q, want miss", httpapi.CacheHeader, got)
	}
	firstAnswer := out["answer"]

	w, out = do(t, h, "POST", "/api/v1/ask", map[string]any{"question": q})
	if got := w.Header().Get(httpapi.CacheHeader); got != "hit" {
		t.Fatalf("repeat ask %s = %q, want hit", httpapi.CacheHeader, got)
	}
	if out["answer"] != firstAnswer {
		t.Fatalf("cached answer %v differs from first %v", out["answer"], firstAnswer)
	}

	// Normalized variants of the same question share the entry.
	w, _ = do(t, h, "POST", "/api/v1/ask", map[string]any{"question": "  how many PDU sessions are currently ACTIVE"})
	if got := w.Header().Get(httpapi.CacheHeader); got != "hit" {
		t.Fatalf("normalized ask %s = %q, want hit", httpapi.CacheHeader, got)
	}

	// nocache bypasses even with a warm entry, and does not disturb it.
	w, _ = do(t, h, "POST", "/api/v1/ask", map[string]any{"question": q, "nocache": true})
	if got := w.Header().Get(httpapi.CacheHeader); got != "bypass" {
		t.Fatalf("nocache ask %s = %q, want bypass", httpapi.CacheHeader, got)
	}
	w, _ = do(t, h, "POST", "/api/v1/ask", map[string]any{"question": q})
	if got := w.Header().Get(httpapi.CacheHeader); got != "hit" {
		t.Fatalf("ask after nocache %s = %q, want hit", httpapi.CacheHeader, got)
	}

	// explain implies bypass: its trace must come from a live pipeline run.
	w, _ = do(t, h, "POST", "/api/v1/ask", map[string]any{"question": q, "explain": true})
	if got := w.Header().Get(httpapi.CacheHeader); got != "bypass" {
		t.Fatalf("explain ask %s = %q, want bypass", httpapi.CacheHeader, got)
	}
}

func TestAskWithoutServingLayerReportsBypass(t *testing.T) {
	h := newServer(t)
	w, _ := do(t, h, "POST", "/api/v1/ask", map[string]any{"question": "How many PDU sessions are currently active?"})
	if got := w.Header().Get(httpapi.CacheHeader); got != "bypass" {
		t.Fatalf("%s = %q, want bypass when no cache is attached", httpapi.CacheHeader, got)
	}
}

// TestAskOverloadSheds fills the single admission slot with a blocked
// computation and expects the queued request to shed with 429.
func TestAskOverloadSheds(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{}, 4)
	h := newServingServer(t, servecache.NewGate(1, 30*time.Millisecond), func() {
		entered <- struct{}{}
		<-hold
	})

	type result struct {
		code  int
		cache string
	}
	first := make(chan result, 1)
	go func() {
		w, _ := do(t, h, "POST", "/api/v1/ask", map[string]any{"question": "How many PDU sessions are currently active?"})
		first <- result{w.Code, w.Header().Get(httpapi.CacheHeader)}
	}()
	<-entered // the slot is now held inside the pipeline

	w, out := do(t, h, "POST", "/api/v1/ask", map[string]any{"question": "What is the paging success rate?"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("queued ask = %d %v, want 429", w.Code, out)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	close(hold)
	r := <-first
	if r.code != 200 {
		t.Fatalf("held ask = %d, want 200", r.code)
	}
	if r.cache != "miss" {
		t.Fatalf("held ask cache = %q, want miss", r.cache)
	}

	// With the slot free again, requests are admitted normally.
	w, _ = do(t, h, "POST", "/api/v1/ask", map[string]any{"question": "How many PDU sessions are currently active?"})
	if w.Code != 200 {
		t.Fatalf("post-release ask = %d, want 200", w.Code)
	}
}
