package httpapi_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"dio/internal/core"
	"dio/internal/feedback"
	"dio/internal/httpapi"
	"dio/internal/llm"
	"dio/internal/router"
	"dio/internal/servecache"
	"dio/internal/tenant"
	"dio/internal/testenv"
)

// testReplicas honours the DIO_REPLICAS env override (the CI multitenant
// leg); the default 1 keeps the single-front wiring.
func testReplicas() int {
	if s := os.Getenv("DIO_REPLICAS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// doH is do with request headers.
func doH(t *testing.T, h http.Handler, method, path string, body any, headers map[string]string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(data))
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	out := make(map[string]any)
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, path, w.Body.String())
	}
	return w, out
}

// newTenantServer builds the handler with a tenant-keyed front, the given
// gate, and a bearer-token tenant mapping.
func newTenantServer(t *testing.T, gate *servecache.Gate) http.Handler {
	t.Helper()
	cat, db, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4"), Retriever: r})
	if err != nil {
		t.Fatal(err)
	}
	frontCfg := servecache.FrontConfig[*core.Answer]{
		Size: 64, TenantShare: 16, TTL: time.Hour,
		Version: cat.Version, TenantVersion: cp.TenantVersion, Head: db.HeadTime,
		Compute: cp.Ask,
	}
	tracker := feedback.NewTracker([]string{"alice"}, nil)
	opts := []httpapi.Option{
		httpapi.WithTenantTokens(map[string]string{"s3cret-acme": "ACME"}),
	}
	// The DIO_REPLICAS override (the CI multitenant leg) runs every tenant
	// test through a replica pool instead of a single front, so routing
	// cannot break tenant isolation or back-compat unnoticed.
	if n := testReplicas(); n > 1 {
		fronts := make([]*servecache.Front[*core.Answer], n)
		for i := range fronts {
			fronts[i] = servecache.NewFront(frontCfg)
		}
		var admitter httpapi.Admitter
		if gate != nil {
			admitter = gate
		}
		opts = append(opts, httpapi.WithServingLayer(router.NewPool(fronts, 0), admitter))
	} else {
		opts = append(opts, httpapi.WithServing(servecache.NewFront(frontCfg), gate))
	}
	return httpapi.New(cp, tracker, nil, opts...)
}

// TestAskTenantCacheIsolation pins that the answer cache keys on the
// tenant header: tenants never see each other's cached answers, and
// requests without the header run as the default tenant.
func TestAskTenantCacheIsolation(t *testing.T) {
	h := newTenantServer(t, nil)
	const q = "How many PDU sessions are currently active?"
	ask := func(tenantID, want string) {
		t.Helper()
		hdr := map[string]string{}
		if tenantID != "" {
			hdr[httpapi.TenantHeader] = tenantID
		}
		w, out := doH(t, h, "POST", "/api/v1/ask", map[string]any{"question": q}, hdr)
		if w.Code != 200 {
			t.Fatalf("tenant %q ask = %d %v", tenantID, w.Code, out)
		}
		if got := w.Header().Get(httpapi.CacheHeader); got != want {
			t.Fatalf("tenant %q ask %s = %q, want %q", tenantID, httpapi.CacheHeader, got, want)
		}
	}
	ask("acme", "miss")
	ask("acme", "hit")
	ask("umbrella", "miss") // must not see acme's entry
	ask("umbrella", "hit")
	ask("", "miss") // default tenant has its own slot
	ask("", "hit")
	// Header values are normalized: case and padding collapse to one tenant.
	ask(" ACME ", "hit")
}

// TestAskTenantBearerToken pins the token→tenant mapping: a mapped bearer
// token runs as that (normalized) tenant, sharing its cache slot; the
// explicit header wins over the token.
func TestAskTenantBearerToken(t *testing.T) {
	h := newTenantServer(t, nil)
	const q = "What is the paging success rate?"

	w, _ := doH(t, h, "POST", "/api/v1/ask", map[string]any{"question": q},
		map[string]string{"Authorization": "Bearer s3cret-acme"})
	if got := w.Header().Get(httpapi.CacheHeader); got != "miss" {
		t.Fatalf("token ask = %q, want miss", got)
	}
	// The token mapped to "ACME", normalized "acme" — the header hits it.
	w, _ = doH(t, h, "POST", "/api/v1/ask", map[string]any{"question": q},
		map[string]string{httpapi.TenantHeader: "acme"})
	if got := w.Header().Get(httpapi.CacheHeader); got != "hit" {
		t.Fatalf("header ask after token ask = %q, want hit (token must map to tenant acme)", got)
	}
	// An unmapped token falls back to the default tenant.
	w, _ = doH(t, h, "POST", "/api/v1/ask", map[string]any{"question": q},
		map[string]string{"Authorization": "Bearer bogus"})
	if got := w.Header().Get(httpapi.CacheHeader); got != "miss" {
		t.Fatalf("unmapped-token ask = %q, want miss (default tenant slot)", got)
	}
	// Header beats token.
	w, _ = doH(t, h, "POST", "/api/v1/ask", map[string]any{"question": q},
		map[string]string{"Authorization": "Bearer s3cret-acme", httpapi.TenantHeader: "umbrella"})
	if got := w.Header().Get(httpapi.CacheHeader); got != "miss" {
		t.Fatalf("header+token ask = %q, want miss (explicit header must win)", got)
	}
}

// TestAskQuotaShedRetryAfter pins the satellite fix: a 429 shed for an
// exhausted tenant QPS quota carries a Retry-After derived from the token
// bucket's refill time — rate 0.1 tokens/s and an empty bucket means the
// next token is 10 seconds out — not the old constant "1".
func TestAskQuotaShedRetryAfter(t *testing.T) {
	gate := servecache.NewGate(4, 50*time.Millisecond)
	gate.SetQuota("acme", tenant.Quota{Rate: 0.1, Burst: 1})
	h := newTenantServer(t, gate)
	hdr := map[string]string{httpapi.TenantHeader: "acme"}

	w, out := doH(t, h, "POST", "/api/v1/ask", map[string]any{"question": "How many PDU sessions are currently active?"}, hdr)
	if w.Code != 200 {
		t.Fatalf("first ask = %d %v", w.Code, out)
	}
	// The burst token is spent; the bucket refills at 0.1/s.
	w, out = doH(t, h, "POST", "/api/v1/ask", map[string]any{"question": "What is the paging success rate?"}, hdr)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("quota-exhausted ask = %d %v, want 429", w.Code, out)
	}
	if got := w.Header().Get("Retry-After"); got != "10" {
		t.Fatalf("Retry-After = %q, want \"10\" (1 token / 0.1 tokens per second)", got)
	}
	// Another tenant is unaffected by acme's exhausted quota.
	w, _ = doH(t, h, "POST", "/api/v1/ask", map[string]any{"question": "What is the paging success rate?"},
		map[string]string{httpapi.TenantHeader: "umbrella"})
	if w.Code != 200 {
		t.Fatalf("bystander ask = %d, want 200", w.Code)
	}
}
