package httpapi_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"dio/internal/core"
	"dio/internal/feedback"
	"dio/internal/httpapi"
	"dio/internal/llm"
	"dio/internal/obs"
	"dio/internal/testenv"
)

// newReq builds a bodyless test request.
func newReq(t *testing.T, method, path string, body any) *http.Request {
	t.Helper()
	if body != nil {
		t.Fatal("newReq is for bodyless requests")
	}
	return httptest.NewRequest(method, path, nil)
}

// doRaw serves one request and returns the raw recorder (no JSON parse).
func doRaw(h http.Handler, req *http.Request) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// newTraceServer builds a handler with request-trace capture enabled on
// the copilot's own tracer, returning the copilot for store access.
func newTraceServer(t *testing.T, capacity int, slow time.Duration) (http.Handler, *core.Copilot) {
	t.Helper()
	cat, db, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cp, err := core.New(core.Config{
		Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4"), Retriever: r,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cp.Tracer().EnableCapture(obs.NewTraceStore(capacity, slow), 1)
	tracker := feedback.NewTracker([]string{"alice"}, nil)
	h := httpapi.New(cp, tracker, nil, httpapi.WithMetrics(reg), httpapi.WithTracing(cp.Tracer()))
	return h, cp
}

// TestAskExplainTraceTree is the acceptance path: an ask with explain
// enabled returns a trace ID whose /debug/traces/{id} span tree holds the
// five pipeline stages with their stage-specific attributes.
func TestAskExplainTraceTree(t *testing.T) {
	h, _ := newTraceServer(t, 64, time.Second)

	w, out := do(t, h, "POST", "/api/v1/ask",
		map[string]any{"question": "How many PDU sessions are currently active?", "explain": true})
	if w.Code != http.StatusOK {
		t.Fatalf("ask: %d %s", w.Code, w.Body.String())
	}
	id, _ := out["trace_id"].(string)
	if id == "" {
		t.Fatal("ask response carries no trace_id")
	}
	if hdr := w.Header().Get("X-DIO-Trace-ID"); hdr != id {
		t.Errorf("X-DIO-Trace-ID header = %q, want %q", hdr, id)
	}

	w, out = do(t, h, "GET", "/debug/traces/"+id, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", w.Code, w.Body.String())
	}
	tree, _ := out["tree"].(map[string]any)
	if tree == nil {
		t.Fatalf("no tree in %v", out)
	}

	// Collect every span and its attrs from the tree.
	type node = map[string]any
	stageAttrs := map[string][]node{}
	var walk func(n node)
	walk = func(n node) {
		name, _ := n["name"].(string)
		attrs, _ := n["attrs"].([]any)
		var as []node
		for _, a := range attrs {
			if m, ok := a.(map[string]any); ok {
				as = append(as, m)
			}
		}
		stageAttrs[name] = append(stageAttrs[name], as...)
		children, _ := n["children"].([]any)
		for _, c := range children {
			if m, ok := c.(map[string]any); ok {
				walk(m)
			}
		}
	}
	walk(tree)

	for _, stage := range []string{"retrieve", "prompt-build", "llm", "sandbox-exec", "dashboard"} {
		if _, ok := stageAttrs[stage]; !ok {
			t.Errorf("stage %q missing from trace tree (stages: %v)", stage, keysOf(stageAttrs))
		}
	}

	hasAttr := func(stage, key string) bool {
		for _, a := range stageAttrs[stage] {
			if a["key"] == key {
				return true
			}
		}
		return false
	}
	if !hasAttr("retrieve", "retrieved.metrics") {
		t.Error("retrieve span lacks retrieved.metrics attr")
	}
	if !hasAttr("llm", "llm.query") {
		t.Error("llm span lacks llm.query attr")
	}
	if !hasAttr("sandbox-exec", "promql.query") || !hasAttr("sandbox-exec", "sandbox.outcome") {
		t.Error("sandbox-exec span lacks promql.query/sandbox.outcome attrs")
	}
	if !hasAttr("sandbox-exec", "promql.samples_loaded") {
		t.Error("sandbox-exec span lacks promql.samples_loaded attr")
	}
	// The executed plan is recorded on the span: what ran, not just what
	// was asked (visible in dio-cli -explain and GET /debug/traces/{id}).
	// No plan runs — so none must be claimed — when the CI legacy-oracle
	// leg forces the tree-walker via DIO_PROMQL_LEGACY.
	if os.Getenv("DIO_PROMQL_LEGACY") == "" && !hasAttr("sandbox-exec", "promql.plan") {
		t.Error("sandbox-exec span lacks promql.plan attr")
	}

	// The retrieved.metrics attr carries names with similarity scores.
	for _, a := range stageAttrs["retrieve"] {
		if a["key"] != "retrieved.metrics" {
			continue
		}
		hits, _ := a["value"].([]any)
		if len(hits) == 0 {
			t.Fatal("retrieved.metrics is empty")
		}
		first, _ := hits[0].(map[string]any)
		if _, ok := first["metric"].(string); !ok {
			t.Errorf("retrieved.metrics entry lacks metric name: %v", first)
		}
		if _, ok := first["score"].(float64); !ok {
			t.Errorf("retrieved.metrics entry lacks score: %v", first)
		}
	}
}

func keysOf(m map[string][]map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestErroredTraceSurvivesCheapTraffic is the retention acceptance: an
// errored query's trace stays retrievable after 100 cheap requests wash
// through a small recent ring.
func TestErroredTraceSurvivesCheapTraffic(t *testing.T) {
	h, _ := newTraceServer(t, 8, time.Hour)

	req := newReq(t, "GET", "/api/v1/query?query=sum%28", nil)
	w := doRaw(h, req)
	if w.Code == http.StatusOK {
		t.Fatalf("malformed query unexpectedly succeeded: %s", w.Body.String())
	}
	id := w.Header().Get("X-DIO-Trace-ID")
	if id == "" {
		t.Fatal("errored query response carries no trace header")
	}

	for i := 0; i < 100; i++ {
		if w := doRaw(h, newReq(t, "GET", "/healthz", nil)); w.Code != http.StatusOK {
			t.Fatalf("healthz %d: %d", i, w.Code)
		}
	}

	w, out := do(t, h, "GET", "/debug/traces/"+id, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("errored trace evicted by cheap traffic: %d", w.Code)
	}
	if out["errored"] != true {
		t.Errorf("trace not marked errored: %v", out)
	}

	// It also shows up under the errored filter.
	w, out = do(t, h, "GET", "/debug/traces?filter=errored", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("list: %d", w.Code)
	}
	found := false
	for _, row := range out["traces"].([]any) {
		if m, ok := row.(map[string]any); ok && m["trace_id"] == id {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s missing from errored listing", id)
	}
}

// TestTraceIDHeaderAdopted: a client-supplied X-DIO-Trace-ID becomes the
// trace's identity.
func TestTraceIDHeaderAdopted(t *testing.T) {
	h, _ := newTraceServer(t, 16, time.Hour)
	req := newReq(t, "GET", "/healthz", nil)
	req.Header.Set("X-DIO-Trace-ID", "client-supplied-7")
	w := doRaw(h, req)
	if got := w.Header().Get("X-DIO-Trace-ID"); got != "client-supplied-7" {
		t.Fatalf("returned trace id = %q, want the adopted one", got)
	}
	if w, _ := do(t, h, "GET", "/debug/traces/client-supplied-7", nil); w.Code != http.StatusOK {
		t.Errorf("adopted trace not retrievable: %d", w.Code)
	}
}

// TestDebugTracesDisabled: without WithTracing the endpoints answer 501.
func TestDebugTracesDisabled(t *testing.T) {
	h := newServer(t)
	if w, _ := do(t, h, "GET", "/debug/traces", nil); w.Code != http.StatusNotImplemented {
		t.Errorf("/debug/traces without tracing = %d, want 501", w.Code)
	}
	if w, _ := do(t, h, "GET", "/debug/traces/xyz", nil); w.Code != http.StatusNotImplemented {
		t.Errorf("/debug/traces/{id} without tracing = %d, want 501", w.Code)
	}
}

// TestDebugTraceUnknownID: an unknown trace ID is a 404.
func TestDebugTraceUnknownID(t *testing.T) {
	h, _ := newTraceServer(t, 8, time.Hour)
	if w, _ := do(t, h, "GET", "/debug/traces/nope", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", w.Code)
	}
}

// TestDebugTraceGolden pins the exact /debug/traces/{id} JSON wire shape
// with a deterministic tracer (fixed clock, sequential IDs).
func TestDebugTraceGolden(t *testing.T) {
	cat, db, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4"), Retriever: r})
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	n := 0
	tr := obs.NewTracer(obs.NewRegistry(), func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	})
	ids := 0
	tr.SetIDGenerator(func() string { ids++; return fmt.Sprintf("t%02d", ids) })
	tr.EnableCapture(obs.NewTraceStore(8, time.Second), 1)

	ctx, root := tr.StartTrace(context.Background(), "POST /api/v1/ask")
	root.SetAttr("question", "q?")
	_, sp := obs.StartSpan(ctx, "retrieve")
	sp.SetAttr("retrieved.count", 2)
	sp.AddEvent("hit", obs.KV("metric", "m1"))
	sp.End()
	_, sp = obs.StartSpan(ctx, "llm")
	sp.SetAttr("llm.kind", "select_metrics")
	sp.End()
	root.End()

	h := httpapi.New(cp, feedback.NewTracker([]string{"alice"}, nil), nil, httpapi.WithTracing(tr))
	w := doRaw(h, newReq(t, "GET", "/debug/traces/t01", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("golden fetch: %d %s", w.Code, w.Body.String())
	}

	want := `{"status":"success","trace_id":"t01","name":"POST /api/v1/ask",` +
		`"start":"2026-08-06T12:00:00.001Z","duration_ms":6,"errored":false,"spans":3,` +
		`"tree":{"span_id":"s01","name":"POST /api/v1/ask","start":"2026-08-06T12:00:00.001Z",` +
		`"duration_ms":6,"attrs":[{"key":"question","value":"q?"}],` +
		`"children":[` +
		`{"span_id":"s02","parent_id":"s01","name":"retrieve","start":"2026-08-06T12:00:00.002Z",` +
		`"duration_ms":2,"attrs":[{"key":"retrieved.count","value":2}],` +
		`"events":[{"time":"2026-08-06T12:00:00.003Z","name":"hit","attrs":[{"key":"metric","value":"m1"}]}]},` +
		`{"span_id":"s03","parent_id":"s01","name":"llm","start":"2026-08-06T12:00:00.005Z",` +
		`"duration_ms":1,"attrs":[{"key":"llm.kind","value":"select_metrics"}]}` +
		`]}}` + "\n"
	if got := w.Body.String(); got != want {
		t.Errorf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}
