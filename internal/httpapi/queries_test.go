package httpapi_test

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"dio/internal/core"
	"dio/internal/feedback"
	"dio/internal/httpapi"
	"dio/internal/llm"
	"dio/internal/obs"
	"dio/internal/testenv"
)

// statsOff reports whether this test run forces an execution path that
// collects no per-operator stats (the CI legacy-oracle and stats-off legs).
func statsOff() bool {
	return os.Getenv("DIO_PROMQL_LEGACY") != "" || os.Getenv("DIO_QUERY_STATS") == "0"
}

// newQueryObsServer builds a handler with the slow-query log and the
// active-query tracker wired through the executor's engine hooks — the
// dio-server wiring.
func newQueryObsServer(t *testing.T, threshold time.Duration) (http.Handler, *obs.QueryLog, *obs.ActiveQueryTracker) {
	t.Helper()
	cat, db, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4"), Retriever: r})
	if err != nil {
		t.Fatal(err)
	}
	qlog := obs.NewQueryLog(8, threshold)
	tracker, _, err := obs.NewActiveQueryTracker("", 4)
	if err != nil {
		t.Fatal(err)
	}
	cp.Executor().ObserveQueries(qlog, tracker)
	h := httpapi.New(cp, feedback.NewTracker([]string{"alice"}, nil), nil,
		httpapi.WithQueryObservability(qlog, tracker))
	return h, qlog, tracker
}

// TestDebugQueriesDisabled: without WithQueryObservability both endpoints
// answer 501.
func TestDebugQueriesDisabled(t *testing.T) {
	h := newServer(t)
	for _, path := range []string{"/debug/queries", "/debug/queries/slow"} {
		if w, _ := do(t, h, "GET", path, nil); w.Code != http.StatusNotImplemented {
			t.Errorf("%s without observability = %d, want 501", path, w.Code)
		}
	}
}

// TestDebugQueriesSlow: queries served by the API land in the slow-query
// log and come back through GET /debug/queries/slow with their measured
// totals and, on the plan-based path, a compact analyzed plan.
func TestDebugQueriesSlow(t *testing.T) {
	h, _, _ := newQueryObsServer(t, time.Nanosecond) // everything is slow
	if w, _ := do(t, h, "GET", "/api/v1/query?query=sum%28smf_pdu_session_active%29", nil); w.Code != http.StatusOK {
		t.Fatalf("query: %d", w.Code)
	}

	w, out := do(t, h, "GET", "/debug/queries/slow", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("slow log: %d %s", w.Code, w.Body.String())
	}
	if out["threshold_ms"].(float64) <= 0 {
		t.Errorf("threshold_ms = %v, want > 0", out["threshold_ms"])
	}
	rows, _ := out["slowest"].([]any)
	if len(rows) == 0 {
		t.Fatal("slow-query log is empty after a served query")
	}
	row, _ := rows[0].(map[string]any)
	if row["query"] != "sum(smf_pdu_session_active)" {
		t.Errorf("logged query = %v, want the canonical expression", row["query"])
	}
	if row["kind"] != "instant" {
		t.Errorf("kind = %v, want instant", row["kind"])
	}
	if row["slow"] != true {
		t.Error("entry not marked slow under a 1ns threshold")
	}
	if _, ok := row["duration_ms"].(float64); !ok {
		t.Errorf("duration_ms missing: %v", row)
	}
	if !statsOff() {
		plan, _ := row["plan"].(string)
		if plan == "" {
			t.Error("entry carries no compact analyzed plan on the plan-based path")
		}
	}
	if heaviest, _ := out["heaviest"].([]any); len(heaviest) == 0 {
		t.Error("heaviest ring is empty")
	}
}

// TestDebugQueriesActive: with nothing in flight the endpoint reports an
// empty active list and the tracker's slot bound; a registered query shows
// up with its elapsed time.
func TestDebugQueriesActive(t *testing.T) {
	h, _, tracker := newQueryObsServer(t, time.Second)
	w, out := do(t, h, "GET", "/debug/queries", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("active: %d %s", w.Code, w.Body.String())
	}
	if got, _ := out["active"].([]any); len(got) != 0 {
		t.Errorf("idle server reports active queries: %v", got)
	}
	if out["max_slots"].(float64) != 4 {
		t.Errorf("max_slots = %v, want 4", out["max_slots"])
	}

	slot := tracker.Insert("rate(amfcc_n1_auth_request[5m])", "range", "t-42")
	defer tracker.Done(slot)
	_, out = do(t, h, "GET", "/debug/queries", nil)
	rows, _ := out["active"].([]any)
	if len(rows) != 1 {
		t.Fatalf("active = %v, want the registered query", rows)
	}
	row, _ := rows[0].(map[string]any)
	if row["query"] != "rate(amfcc_n1_auth_request[5m])" || row["kind"] != "range" || row["trace_id"] != "t-42" {
		t.Errorf("active row = %v", row)
	}
	if _, ok := row["elapsed_ms"].(float64); !ok {
		t.Errorf("elapsed_ms missing: %v", row)
	}
}

// TestDebugPlanAnalyze: ?analyze=true runs the query and returns the
// annotated plan; a bad analyze value is a 400.
func TestDebugPlanAnalyze(t *testing.T) {
	h := newServer(t)
	if w, _ := do(t, h, "GET", "/debug/plan?query=up&analyze=maybe", nil); w.Code != http.StatusBadRequest {
		t.Errorf("bad analyze value = %d, want 400", w.Code)
	}

	w, out := do(t, h, "GET", "/debug/plan?query=sum%28smf_pdu_session_active%29&analyze=false", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("plain plan: %d %s", w.Code, w.Body.String())
	}
	if out["analyzed"] != false {
		t.Errorf("analyzed = %v, want false", out["analyzed"])
	}

	if statsOff() {
		t.Skip("stats collection forced off for this run; analyze path yields no profile")
	}
	w, out = do(t, h, "GET", "/debug/plan?query=sum%28smf_pdu_session_active%29&analyze=true", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("analyzed plan: %d %s", w.Code, w.Body.String())
	}
	if out["analyzed"] != true {
		t.Errorf("analyzed = %v, want true", out["analyzed"])
	}
	plan, _ := out["plan"].(string)
	for _, want := range []string{"analyze for: sum(smf_pdu_session_active)", "plan cache", "agg sum"} {
		if !strings.Contains(plan, want) {
			t.Errorf("analyzed plan missing %q:\n%s", want, plan)
		}
	}
}

// TestAskAnalyze: an ask with "analyze": true profiles the generated
// query's sandbox execution and returns its EXPLAIN ANALYZE tree.
func TestAskAnalyze(t *testing.T) {
	if statsOff() {
		t.Skip("stats collection forced off for this run")
	}
	h := newServer(t)
	w, out := do(t, h, "POST", "/api/v1/ask",
		map[string]any{"question": "How many PDU sessions are currently active?", "analyze": true})
	if w.Code != http.StatusOK {
		t.Fatalf("ask: %d %s", w.Code, w.Body.String())
	}
	plan, _ := out["analyzed_plan"].(string)
	if !strings.Contains(plan, "analyze for: ") {
		t.Errorf("analyzed_plan = %q, want an EXPLAIN ANALYZE tree", plan)
	}

	// Without the flag the field stays absent.
	_, out = do(t, h, "POST", "/api/v1/ask",
		map[string]any{"question": "How many PDU sessions are currently active?", "no_cache": true})
	if _, ok := out["analyzed_plan"]; ok {
		t.Errorf("analyzed_plan present without analyze: %v", out["analyzed_plan"])
	}
}

// TestDebugTraceListGolden pins the exact GET /debug/traces wire shape —
// newest first, bounded by the default limit — with a deterministic
// tracer.
func TestDebugTraceListGolden(t *testing.T) {
	cat, db, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4"), Retriever: r})
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	n := 0
	tr := obs.NewTracer(obs.NewRegistry(), func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	})
	ids := 0
	tr.SetIDGenerator(func() string { ids++; return fmt.Sprintf("t%02d", ids) })
	tr.EnableCapture(obs.NewTraceStore(8, time.Second), 1)

	for i := 0; i < 2; i++ {
		_, root := tr.StartTrace(context.Background(), fmt.Sprintf("GET /req/%d", i))
		root.End()
	}

	h := httpapi.New(cp, feedback.NewTracker([]string{"alice"}, nil), nil, httpapi.WithTracing(tr))
	w := doRaw(h, newReq(t, "GET", "/debug/traces", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("list: %d %s", w.Code, w.Body.String())
	}
	want := `{"status":"success","traces":[` +
		`{"trace_id":"t02","name":"GET /req/1","start":"2026-08-06T12:00:00.003Z",` +
		`"duration_ms":1,"errored":false,"slow":false,"spans":1},` +
		`{"trace_id":"t01","name":"GET /req/0","start":"2026-08-06T12:00:00.001Z",` +
		`"duration_ms":1,"errored":false,"slow":false,"spans":1}` +
		`]}` + "\n"
	if got := w.Body.String(); got != want {
		t.Errorf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}

	// ?limit=1 keeps only the newest trace.
	w = doRaw(h, newReq(t, "GET", "/debug/traces?limit=1", nil))
	wantOne := `{"status":"success","traces":[` +
		`{"trace_id":"t02","name":"GET /req/1","start":"2026-08-06T12:00:00.003Z",` +
		`"duration_ms":1,"errored":false,"slow":false,"spans":1}` +
		`]}` + "\n"
	if got := w.Body.String(); got != wantOne {
		t.Errorf("limit=1 golden mismatch:\n got: %s\nwant: %s", got, wantOne)
	}

	if w := doRaw(h, newReq(t, "GET", "/debug/traces?limit=-3", nil)); w.Code != http.StatusBadRequest {
		t.Errorf("negative limit = %d, want 400", w.Code)
	}
}
