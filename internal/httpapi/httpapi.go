// Package httpapi exposes the copilot over HTTP: the message-bar ask
// endpoint of Figure 1b, a Prometheus-compatible query API over the
// operator TSDB, catalog search, and the expert-feedback endpoints.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dio/internal/core"
	"dio/internal/dashboard"
	"dio/internal/feedback"
	"dio/internal/promql"
	"dio/internal/sandbox"
)

// Server wires the copilot, executor and feedback tracker into an
// http.Handler.
type Server struct {
	copilot *core.Copilot
	tracker *feedback.Tracker
	logger  *log.Logger
	mux     *http.ServeMux
}

// New assembles the server. logger may be nil to disable request logs.
func New(cp *core.Copilot, tracker *feedback.Tracker, logger *log.Logger) *Server {
	s := &Server{copilot: cp, tracker: tracker, logger: logger, mux: http.NewServeMux()}
	// Audit every query the service executes (§5.4 safety).
	if cp.Executor().Audit() == nil {
		cp.Executor().SetAudit(sandbox.NewAuditLog(4096, nil))
	}
	s.mux.HandleFunc("GET /api/v1/audit", s.handleAudit)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /api/v1/ask", s.handleAsk)
	s.mux.HandleFunc("GET /api/v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /api/v1/query_range", s.handleQueryRange)
	s.mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/v1/feedback", s.handleFeedbackList)
	s.mux.HandleFunc("POST /api/v1/feedback", s.handleFeedbackOpen)
	s.mux.HandleFunc("POST /api/v1/feedback/{id}/resolve", s.handleFeedbackResolve)
	s.mux.HandleFunc("POST /api/v1/feedback/{id}/propose", s.handleProposalOpen)
	s.mux.HandleFunc("GET /api/v1/proposals", s.handleProposalList)
	s.mux.HandleFunc("POST /api/v1/proposals/{id}/vote", s.handleProposalVote)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.logger != nil {
		s.logger.Printf("%s %s", r.Method, r.URL.Path)
	}
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope.
type apiError struct {
	Status string `json:"status"`
	Error  string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil && code < 500 {
		// Too late to change the status; nothing sensible to do.
		_ = err
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Status: "error", Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// askRequest is the POST /api/v1/ask body.
type askRequest struct {
	Question string `json:"question"`
}

// askResponse mirrors core.Answer in wire form.
type askResponse struct {
	Status    string               `json:"status"`
	Question  string               `json:"question"`
	Task      string               `json:"task"`
	Metrics   []askMetric          `json:"metrics"`
	Query     string               `json:"query"`
	Answer    string               `json:"answer"`
	ExecError string               `json:"exec_error,omitempty"`
	Dashboard *dashboard.Dashboard `json:"dashboard,omitempty"`
	CostCents float64              `json:"cost_cents"`
}

type askMetric struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		writeErr(w, http.StatusBadRequest, errors.New("question is required"))
		return
	}
	ans, err := s.copilot.Ask(r.Context(), req.Question)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := askResponse{
		Status: "success", Question: ans.Question, Task: ans.Task.String(),
		Query: ans.Query, Answer: ans.ValueText, Dashboard: ans.Dashboard,
		CostCents: ans.CostCents,
	}
	if ans.ExecErr != nil {
		resp.ExecError = ans.ExecErr.Error()
	}
	for _, m := range ans.Metrics {
		resp.Metrics = append(resp.Metrics, askMetric{Name: m.Name, Description: m.Description})
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryData is the Prometheus-style result envelope.
type queryData struct {
	Status string `json:"status"`
	Data   struct {
		ResultType string `json:"resultType"`
		Result     any    `json:"result"`
	} `json:"data"`
}

// wireVector marshals an instant vector in Prometheus wire form.
func wireVector(v promql.Vector) []map[string]any {
	out := make([]map[string]any, 0, len(v))
	for _, s := range v {
		out = append(out, map[string]any{
			"metric": s.Labels.Map(),
			"value":  [2]any{float64(s.T) / 1000, strconv.FormatFloat(s.V, 'g', -1, 64)},
		})
	}
	return out
}

func wireMatrix(m promql.Matrix) []map[string]any {
	out := make([]map[string]any, 0, len(m))
	for _, s := range m {
		values := make([][2]any, 0, len(s.Samples))
		for _, smp := range s.Samples {
			values = append(values, [2]any{float64(smp.T) / 1000, strconv.FormatFloat(smp.V, 'g', -1, 64)})
		}
		out = append(out, map[string]any{"metric": s.Labels.Map(), "values": values})
	}
	return out
}

// parseTime accepts RFC3339 or Unix seconds; zero value means defaultT.
func parseTime(s string, defaultT time.Time) (time.Time, error) {
	if s == "" {
		return defaultT, nil
	}
	if ts, err := strconv.ParseFloat(s, 64); err == nil {
		return time.UnixMilli(int64(ts * 1000)), nil
	}
	return time.Parse(time.RFC3339, s)
}

// latest returns the newest sample instant in the store.
func (s *Server) latest() time.Time {
	if _, maxT, ok := s.copilot.Executor().Engine().DB().TimeRange(); ok {
		return time.UnixMilli(maxT)
	}
	return time.Unix(0, 0)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("query")
	if q == "" {
		writeErr(w, http.StatusBadRequest, errors.New("query parameter is required"))
		return
	}
	ts, err := parseTime(r.URL.Query().Get("time"), s.latest())
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad time: %w", err))
		return
	}
	v, err := s.copilot.Executor().Execute(r.Context(), q, ts)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, sandbox.ErrRejected) {
			code = http.StatusForbidden
		}
		writeErr(w, code, err)
		return
	}
	var resp queryData
	resp.Status = "success"
	switch x := v.(type) {
	case promql.Scalar:
		resp.Data.ResultType = "scalar"
		resp.Data.Result = [2]any{float64(x.T) / 1000, strconv.FormatFloat(x.V, 'g', -1, 64)}
	case promql.Vector:
		resp.Data.ResultType = "vector"
		resp.Data.Result = wireVector(x)
	case promql.Matrix:
		resp.Data.ResultType = "matrix"
		resp.Data.Result = wireMatrix(x)
	default:
		resp.Data.ResultType = "string"
		resp.Data.Result = promql.FormatValue(v)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	q := qv.Get("query")
	if q == "" {
		writeErr(w, http.StatusBadRequest, errors.New("query parameter is required"))
		return
	}
	end, err := parseTime(qv.Get("end"), s.latest())
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad end: %w", err))
		return
	}
	start, err := parseTime(qv.Get("start"), end.Add(-time.Hour))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad start: %w", err))
		return
	}
	step := time.Minute
	if sv := qv.Get("step"); sv != "" {
		d, err := promql.ParseDuration(sv)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad step: %w", err))
			return
		}
		step = d
	}
	m, err := s.copilot.Executor().ExecuteRange(r.Context(), q, start, end, step)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	var resp queryData
	resp.Status = "success"
	resp.Data.ResultType = "matrix"
	resp.Data.Result = wireMatrix(m)
	writeJSON(w, http.StatusOK, resp)
}

// metricInfo is the catalog search result row.
type metricInfo struct {
	Name        string `json:"name"`
	NF          string `json:"nf"`
	Type        string `json:"type"`
	Description string `json:"description"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	q := strings.ToLower(r.URL.Query().Get("q"))
	limit := 50
	if lv := r.URL.Query().Get("limit"); lv != "" {
		if n, err := strconv.Atoi(lv); err == nil && n > 0 {
			limit = n
		}
	}
	var out []metricInfo
	for _, m := range s.copilot.Catalog().Metrics {
		if q != "" && !strings.Contains(strings.ToLower(m.Name), q) &&
			!strings.Contains(strings.ToLower(m.Description), q) {
			continue
		}
		out = append(out, metricInfo{Name: m.Name, NF: m.NF, Type: m.Type.String(), Description: m.Description})
		if len(out) >= limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "success", "metrics": out})
}

func (s *Server) handleFeedbackList(w http.ResponseWriter, _ *http.Request) {
	if s.tracker == nil {
		writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "success", "issues": s.tracker.List(-1)})
}

// feedbackOpenRequest is the POST /api/v1/feedback body: re-ask the
// question and open an issue from the copilot's own answer (the
// raised-hand button of §3.4).
type feedbackOpenRequest struct {
	Question string `json:"question"`
}

func (s *Server) handleFeedbackOpen(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	var req feedbackOpenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Question) == "" {
		writeErr(w, http.StatusBadRequest, errors.New("question is required"))
		return
	}
	ans, err := s.copilot.Ask(r.Context(), req.Question)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	issue := feedback.OpenFromAnswer(s.tracker, ans)
	writeJSON(w, http.StatusCreated, map[string]any{"status": "success", "issue": issue})
}

// resolveRequest is the POST /api/v1/feedback/{id}/resolve body.
type resolveRequest struct {
	Expert       string `json:"expert"`
	MetricName   string `json:"metric_name"`
	Description  string `json:"description"`
	FunctionName string `json:"function_name,omitempty"`
	FunctionTmpl string `json:"function_template,omitempty"`
	FunctionArgs int    `json:"function_arity,omitempty"`
}

func (s *Server) handleFeedbackResolve(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad issue id: %w", err))
		return
	}
	var req resolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	err = s.tracker.Resolve(id, req.Expert, feedback.Contribution{
		MetricName: req.MetricName, Description: req.Description,
		FunctionName: req.FunctionName, FunctionTemplate: req.FunctionTmpl,
		FunctionArity: req.FunctionArgs,
	})
	switch {
	case errors.Is(err, feedback.ErrUnknownIssue):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, feedback.ErrNotExpert):
		writeErr(w, http.StatusForbidden, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		issue, _ := s.tracker.Get(id)
		writeJSON(w, http.StatusOK, map[string]any{"status": "success", "issue": issue})
	}
}

// proposeRequest is the POST /api/v1/feedback/{id}/propose body: a
// community contribution awaiting expert votes (the Stack Overflow-style
// mechanism of §3.4's future work).
type proposeRequest struct {
	Author       string `json:"author"`
	MetricName   string `json:"metric_name"`
	Description  string `json:"description"`
	FunctionName string `json:"function_name,omitempty"`
	FunctionTmpl string `json:"function_template,omitempty"`
	FunctionArgs int    `json:"function_arity,omitempty"`
}

func (s *Server) handleProposalOpen(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad issue id: %w", err))
		return
	}
	var req proposeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	p, err := s.tracker.Propose(id, req.Author, feedback.Contribution{
		MetricName: req.MetricName, Description: req.Description,
		FunctionName: req.FunctionName, FunctionTemplate: req.FunctionTmpl,
		FunctionArity: req.FunctionArgs,
	})
	switch {
	case errors.Is(err, feedback.ErrUnknownIssue):
		writeErr(w, http.StatusNotFound, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusCreated, map[string]any{"status": "success", "proposal": p})
	}
}

func (s *Server) handleProposalList(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	issueID := -1
	if v := r.URL.Query().Get("issue"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad issue filter: %w", err))
			return
		}
		issueID = n
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "success", "proposals": s.tracker.Proposals(issueID)})
}

// voteRequest is the POST /api/v1/proposals/{id}/vote body.
type voteRequest struct {
	Expert string `json:"expert"`
	Up     bool   `json:"up"`
}

func (s *Server) handleProposalVote(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad proposal id: %w", err))
		return
	}
	var req voteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	err = s.tracker.Vote(id, req.Expert, req.Up)
	switch {
	case errors.Is(err, feedback.ErrUnknownProposal):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, feedback.ErrNotExpert), errors.Is(err, feedback.ErrSelfVote):
		writeErr(w, http.StatusForbidden, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "success"})
	}
}

// handleAudit returns the sandbox's query audit log, newest last.
func (s *Server) handleAudit(w http.ResponseWriter, _ *http.Request) {
	a := s.copilot.Executor().Audit()
	if a == nil {
		writeErr(w, http.StatusNotImplemented, errors.New("auditing is not enabled"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "success", "entries": a.Entries()})
}
