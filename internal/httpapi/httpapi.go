// Package httpapi exposes the copilot over HTTP: the message-bar ask
// endpoint of Figure 1b, a Prometheus-compatible query API over the
// operator TSDB, catalog search, and the expert-feedback endpoints.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"dio/internal/core"
	"dio/internal/dashboard"
	"dio/internal/feedback"
	"dio/internal/ingest"
	"dio/internal/obs"
	"dio/internal/promql"
	"dio/internal/sandbox"
	"dio/internal/servecache"
	"dio/internal/tenant"
)

// TraceIDHeader carries the request trace ID in both directions: clients
// may supply one to adopt, and every traced response returns the ID that
// /debug/traces/{id} resolves.
const TraceIDHeader = "X-DIO-Trace-ID"

// CacheHeader reports how POST /api/v1/ask resolved the answer: "hit"
// (served from the answer cache, including coalesced singleflight
// followers), "miss" (computed and cached), or "bypass" (nocache/explain
// request, or no serving layer attached).
const CacheHeader = "X-DIO-Cache"

// TenantHeader names the requesting tenant. Requests without it (and
// without a mapped bearer token) run as the default tenant, reproducing
// the pre-tenancy behaviour exactly. The value is normalized (lowercased,
// restricted charset, bounded length) before use.
const TenantHeader = "X-DIO-Tenant"

// AnswerFront is the answer-cache surface the ask path serves through: a
// single *servecache.Front or a router.Pool spreading tenants over K
// replica fronts.
type AnswerFront interface {
	Do(ctx context.Context, question string, bypass bool) (*core.Answer, servecache.Status, error)
}

// Admitter is the admission-control surface bounding concurrent answer
// computations (servecache.FairGate in production).
type Admitter interface {
	Acquire(ctx context.Context) (release func(), err error)
}

// Server wires the copilot, executor and feedback tracker into an
// http.Handler.
type Server struct {
	copilot *core.Copilot
	tracker *feedback.Tracker
	logger  *slog.Logger
	mux     *http.ServeMux

	// registry is the self-observability registry served at GET /metrics
	// (nil when observability is off).
	registry *obs.Registry
	requests *obs.CounterVec   // dio_http_requests_total{route,code}
	duration *obs.HistogramVec // dio_http_request_duration_seconds{route}

	// tracer/traces enable request-scoped capture and the /debug/traces
	// endpoints (nil when tracing is off).
	tracer *obs.Tracer
	traces *obs.TraceStore

	// front/gate form the serving-throughput layer (nil when off): the
	// answer cache with singleflight in front of Ask, and the admission
	// gate bounding concurrent answer computations.
	front AnswerFront
	gate  Admitter

	// tenantTokens maps bearer tokens to tenant IDs (nil disables
	// token-based tenant mapping).
	tenantTokens map[string]string

	// ingest is the durable WAL-backed store behind POST /api/v1/write
	// (nil when the server runs memory-only).
	ingest *ingest.Store

	// qlog/activeq serve the query-profiling endpoints /debug/queries and
	// /debug/queries/slow (nil when query observability is off).
	qlog    *obs.QueryLog
	activeq *obs.ActiveQueryTracker
}

// Option configures optional server features.
type Option func(*Server)

// WithMetrics attaches the self-observability registry: GET /metrics
// serves its Prometheus exposition and every request is counted and timed
// per route.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) {
		s.registry = reg
		s.requests = reg.CounterVec("dio_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "", "route", "code")
		s.duration = reg.HistogramVec("dio_http_request_duration_seconds",
			"HTTP request latency by route pattern.", "seconds", obs.DefBuckets(), "route")
	}
}

// WithTracing attaches a capture-enabled tracer: requests are traced
// (subject to the tracer's sampling), trace IDs propagate through the
// X-DIO-Trace-ID header, and GET /debug/traces[/{id}] serve the store.
func WithTracing(tr *obs.Tracer) Option {
	return func(s *Server) {
		s.tracer = tr
		s.traces = tr.Store()
	}
}

// WithServing attaches the serving-throughput layer: ask answers are
// served through the cache/singleflight front, and the admission gate
// bounds how many answers compute concurrently (overload sheds with
// 429). Either may be nil to enable just one half.
func WithServing(front *servecache.Front[*core.Answer], gate *servecache.Gate) Option {
	return func(s *Server) {
		// Assign through the concrete nil checks so a nil half stays a nil
		// interface (a typed-nil AnswerFront would pass the s.front != nil
		// guard and then panic).
		if front != nil {
			s.front = front
		}
		if gate != nil {
			s.gate = gate
		}
	}
}

// WithServingLayer is WithServing for alternative implementations: a
// router.Pool distributing tenants over K replica fronts, or a custom
// admitter. Either may be nil.
func WithServingLayer(front AnswerFront, gate Admitter) Option {
	return func(s *Server) {
		if front != nil {
			s.front = front
		}
		if gate != nil {
			s.gate = gate
		}
	}
}

// WithTenantTokens maps bearer tokens to tenant IDs: a request carrying
// "Authorization: Bearer <token>" (and no explicit tenant header) runs as
// the mapped tenant. Tenant IDs are normalized at registration.
func WithTenantTokens(tokens map[string]string) Option {
	return func(s *Server) {
		if len(tokens) == 0 {
			return
		}
		s.tenantTokens = make(map[string]string, len(tokens))
		for tok, id := range tokens {
			s.tenantTokens[tok] = tenant.Normalize(id)
		}
	}
}

// WithQueryObservability attaches the slow-query log and the active-query
// tracker: GET /debug/queries lists in-flight queries and
// GET /debug/queries/slow the slowest/heaviest finished ones. Either may
// be nil to expose just one view. The caller wires the same instances
// into the executor (Executor.ObserveQueries) so the engine feeds them.
func WithQueryObservability(qlog *obs.QueryLog, tracker *obs.ActiveQueryTracker) Option {
	return func(s *Server) {
		s.qlog = qlog
		s.activeq = tracker
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/ (behind the server's
// -debug flag; not meant for unauthenticated production exposure).
func WithPprof() Option {
	return func(s *Server) {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// New assembles the server. logger may be nil to disable request logs.
func New(cp *core.Copilot, tracker *feedback.Tracker, logger *slog.Logger, opts ...Option) *Server {
	s := &Server{copilot: cp, tracker: tracker, logger: logger, mux: http.NewServeMux()}
	// Audit every query the service executes (§5.4 safety).
	if cp.Executor().Audit() == nil {
		cp.Executor().SetAudit(sandbox.NewAuditLog(4096, nil))
	}
	s.mux.HandleFunc("GET /api/v1/audit", s.handleAudit)
	s.mux.HandleFunc("GET /debug/plan", s.handlePlan)
	s.mux.HandleFunc("GET /debug/queries", s.handleQueriesActive)
	s.mux.HandleFunc("GET /debug/queries/slow", s.handleQueriesSlow)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleExposition)
	s.mux.HandleFunc("POST /api/v1/ask", s.handleAsk)
	s.mux.HandleFunc("GET /api/v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /api/v1/query_range", s.handleQueryRange)
	s.mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/v1/feedback", s.handleFeedbackList)
	s.mux.HandleFunc("POST /api/v1/feedback", s.handleFeedbackOpen)
	s.mux.HandleFunc("POST /api/v1/feedback/{id}/resolve", s.handleFeedbackResolve)
	s.mux.HandleFunc("POST /api/v1/feedback/{id}/propose", s.handleProposalOpen)
	s.mux.HandleFunc("GET /api/v1/proposals", s.handleProposalList)
	s.mux.HandleFunc("POST /api/v1/proposals/{id}/vote", s.handleProposalVote)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// statusWriter captures the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// tenantFor resolves the requesting tenant: the explicit tenant header
// first, then a mapped bearer token, else the default tenant.
func (s *Server) tenantFor(r *http.Request) string {
	if id := tenant.Normalize(r.Header.Get(TenantHeader)); id != "" {
		return id
	}
	if s.tenantTokens != nil {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			if id, ok := s.tenantTokens[strings.TrimPrefix(auth, "Bearer ")]; ok && id != "" {
				return id
			}
		}
	}
	return tenant.Default
}

// traceable reports whether requests on path get a request-scoped trace.
// Introspection and exposition endpoints are excluded: tracing the trace
// reader would fill the store with its own reads.
func traceable(path string) bool {
	return path != "/metrics" && !strings.HasPrefix(path, "/debug/")
}

// ServeHTTP implements http.Handler: it routes through the mux wrapped in
// the tracing/status/duration middleware, logs the completed request, and
// counts it per route pattern.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Resolve the route pattern before serving so metrics and trace roots
	// label by the registered pattern ("POST /api/v1/ask"), not the raw
	// (unbounded-cardinality) URL path.
	_, route := s.mux.Handler(r)
	if route == "" {
		route = "unmatched"
	}
	// Tenant identity is stamped before the trace starts so every span,
	// cache lookup, admission decision and query-log entry below sees it.
	tid := s.tenantFor(r)
	if tid != tenant.Default {
		r = r.WithContext(tenant.WithID(r.Context(), tid))
	}
	var root *obs.Span
	if s.tracer != nil && traceable(r.URL.Path) {
		var opts []obs.TraceOption
		if id := r.Header.Get(TraceIDHeader); id != "" {
			opts = append(opts, obs.WithTraceID(id))
		}
		ctx, sp := s.tracer.StartTrace(r.Context(), route, opts...)
		if sp.Recording() {
			root = sp
			sp.SetAttr("http.method", r.Method)
			sp.SetAttr("http.path", r.URL.Path)
			if tid != tenant.Default {
				sp.SetAttr("tenant", tid)
			}
			w.Header().Set(TraceIDHeader, sp.TraceID())
			r = r.WithContext(ctx)
		}
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	started := time.Now()
	s.mux.ServeHTTP(sw, r)
	elapsed := time.Since(started)
	root.SetAttr("http.status", sw.status)
	if sw.status >= http.StatusInternalServerError {
		root.SetError(fmt.Errorf("HTTP %d", sw.status))
	}
	root.End()
	if s.logger != nil {
		args := []any{"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration", elapsed.Round(time.Millisecond).String()}
		if id := root.TraceID(); id != "" {
			args = append(args, "trace_id", id)
		}
		s.logger.Info("request", args...)
	}
	if s.requests != nil {
		s.requests.With(route, strconv.Itoa(sw.status)).Inc()
		s.duration.With(route).Observe(elapsed.Seconds())
	}
}

// defaultTraceListLimit bounds GET /debug/traces responses when the
// client sends no ?limit: the store holds hundreds of traces and an
// unbounded listing made the endpoint unusable from a terminal.
const defaultTraceListLimit = 50

// handleTraceList serves GET /debug/traces: recent captured traces, newest
// first. ?filter=recent|slow|errored|notable selects the view, ?limit=N
// bounds it (default 50; 0 means unlimited).
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("trace capture is not enabled"))
		return
	}
	limit := defaultTraceListLimit
	if lv := r.URL.Query().Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n < 0 {
			s.writeErr(w, http.StatusBadRequest, errors.New("bad limit"))
			return
		}
		limit = n
	}
	list := s.traces.List(r.URL.Query().Get("filter"), limit)
	if list == nil {
		list = []obs.TraceSummary{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "success", "traces": list})
}

// traceDetail is the GET /debug/traces/{id} wire shape: the trace identity
// plus its span tree.
type traceDetail struct {
	Status     string        `json:"status"`
	TraceID    string        `json:"trace_id"`
	Name       string        `json:"name"`
	Start      time.Time     `json:"start"`
	DurationMS float64       `json:"duration_ms"`
	Error      string        `json:"error,omitempty"`
	Errored    bool          `json:"errored"`
	Spans      int           `json:"spans"`
	Tree       *obs.SpanTree `json:"tree"`
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("trace capture is not enabled"))
		return
	}
	id := r.PathValue("id")
	td, ok := s.traces.Get(id)
	if !ok {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("unknown trace %q", id))
		return
	}
	s.writeJSON(w, http.StatusOK, traceDetail{
		Status: "success", TraceID: td.TraceID, Name: td.Name, Start: td.Start,
		DurationMS: td.DurationMS, Error: td.Error, Errored: td.Errored,
		Spans: len(td.Spans), Tree: td.Tree(),
	})
}

// handlePlan serves GET /debug/plan?query=…: the optimized execution plan
// the engine compiles for the query, rendered as an operator tree with the
// optimizer passes that applied. The plan comes from the same per-engine
// cache the executor uses, so what this endpoint shows is what runs.
// ?analyze=true executes the query and annotates every operator with its
// measured wall time, series and sample counts (EXPLAIN ANALYZE).
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("query")
	if q == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("query parameter is required"))
		return
	}
	analyze := false
	if av := r.URL.Query().Get("analyze"); av != "" {
		b, err := strconv.ParseBool(av)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad analyze: %w", err))
			return
		}
		analyze = b
	}
	var (
		plan string
		err  error
	)
	if analyze {
		plan, err = s.copilot.ExplainAnalyzeQuery(r.Context(), q)
	} else {
		plan, err = s.copilot.ExplainQuery(q)
	}
	if err != nil {
		s.writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "success", "query": q, "analyzed": analyze, "plan": plan,
	})
}

// activeQueryWire is one GET /debug/queries row.
type activeQueryWire struct {
	Query     string    `json:"query"`
	Kind      string    `json:"kind,omitempty"`
	TraceID   string    `json:"trace_id,omitempty"`
	Start     time.Time `json:"start"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

// handleQueriesActive serves GET /debug/queries: the queries in flight
// right now, oldest first, with the tracker's slot bound.
func (s *Server) handleQueriesActive(w http.ResponseWriter, _ *http.Request) {
	if s.activeq == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("query observability is not enabled"))
		return
	}
	now := time.Now()
	active := s.activeq.Active()
	out := make([]activeQueryWire, 0, len(active))
	for _, e := range active {
		out = append(out, activeQueryWire{
			Query: e.Query, Kind: e.Kind, TraceID: e.TraceID, Start: e.Start,
			ElapsedMS: float64(now.Sub(e.Start)) / float64(time.Millisecond),
		})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "success", "active": out, "max_slots": s.activeq.MaxSlots(),
	})
}

// queryLogWire is one GET /debug/queries/slow row.
type queryLogWire struct {
	Query      string    `json:"query"`
	Kind       string    `json:"kind"`
	Tenant     string    `json:"tenant,omitempty"`
	TraceID    string    `json:"trace_id,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Samples    int64     `json:"samples"`
	Steps      int       `json:"steps,omitempty"`
	Slow       bool      `json:"slow"`
	Error      string    `json:"error,omitempty"`
	Plan       string    `json:"plan,omitempty"`
}

func queryLogRows(entries []obs.QueryLogEntry) []queryLogWire {
	out := make([]queryLogWire, 0, len(entries))
	for _, e := range entries {
		tid := e.Tenant
		if tid == tenant.Default {
			tid = "" // omitted on the wire; pre-tenancy rows stay byte-identical
		}
		out = append(out, queryLogWire{
			Query: e.Query, Kind: e.Kind, Tenant: tid, TraceID: e.TraceID, Start: e.Start,
			DurationMS: float64(e.Duration) / float64(time.Millisecond),
			Samples:    e.Samples, Steps: e.Steps, Slow: e.Slow,
			Error: e.Err, Plan: e.Plan,
		})
	}
	return out
}

// handleQueriesSlow serves GET /debug/queries/slow: the slow-query log's
// two rings — slowest by wall-clock duration and heaviest by stored
// samples touched — each row carrying the compact analyzed plan and trace
// ID for follow-up at /debug/traces/{id} and /debug/plan?analyze=true.
func (s *Server) handleQueriesSlow(w http.ResponseWriter, _ *http.Request) {
	if s.qlog == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("query observability is not enabled"))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":       "success",
		"threshold_ms": float64(s.qlog.Threshold()) / float64(time.Millisecond),
		"slowest":      queryLogRows(s.qlog.Slowest()),
		"heaviest":     queryLogRows(s.qlog.Heaviest()),
	})
}

// handleExposition serves the Prometheus text exposition of the attached
// registry.
func (s *Server) handleExposition(w http.ResponseWriter, _ *http.Request) {
	if s.registry == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("self-observability is not enabled"))
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	if err := s.registry.FormatText(w); err != nil && s.logger != nil {
		s.logger.Error("metrics exposition failed", "err", err)
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Status string `json:"status"`
	Error  string `json:"error"`
}

// writeJSON writes v as the response body. The status is already on the
// wire if encoding fails, so the error can only be surfaced in the server
// log — but it must be surfaced, not discarded: a marshalling bug would
// otherwise produce silently truncated responses.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil && s.logger != nil {
		s.logger.Error("writeJSON encoding failed", "type", fmt.Sprintf("%T", v), "err", err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, apiError{Status: "error", Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// askRequest is the POST /api/v1/ask body. Explain forces trace capture
// for this request (bypassing sampling) so the returned trace_id is
// guaranteed to resolve at /debug/traces/{id}. Analyze additionally
// profiles the generated query's execution and returns the EXPLAIN
// ANALYZE plan in analyzed_plan (implies a cache bypass — a cached
// answer carries no fresh execution to profile). NoCache skips the
// answer cache for this request (the response still computes fresh and
// is not stored).
type askRequest struct {
	Question string `json:"question"`
	Explain  bool   `json:"explain,omitempty"`
	Analyze  bool   `json:"analyze,omitempty"`
	NoCache  bool   `json:"nocache,omitempty"`
}

// askResponse mirrors core.Answer in wire form.
type askResponse struct {
	Status    string               `json:"status"`
	Question  string               `json:"question"`
	Task      string               `json:"task"`
	Metrics   []askMetric          `json:"metrics"`
	Query     string               `json:"query"`
	Answer    string               `json:"answer"`
	ExecError string               `json:"exec_error,omitempty"`
	Dashboard *dashboard.Dashboard `json:"dashboard,omitempty"`
	CostCents float64              `json:"cost_cents"`
	TraceID   string               `json:"trace_id,omitempty"`
	// AnalyzedPlan carries the per-operator execution profile of the
	// generated query when the request set analyze.
	AnalyzedPlan string `json:"analyzed_plan,omitempty"`
}

type askMetric struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
}

// admit takes an admission-gate slot before an answer computation, or
// sheds the request: 429 with a quota-aware Retry-After when the tenant's
// rate quota is exhausted or the queue wait expires, 503 when the client
// context dies while queued. The release func must be called once the
// computation finishes; ok=false means the response is already written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.gate == nil {
		return func() {}, true
	}
	release, err := s.gate.Acquire(r.Context())
	if err != nil {
		obs.SpanFrom(r.Context()).SetError(err)
		if errors.Is(err, servecache.ErrOverloaded) || errors.Is(err, servecache.ErrQuotaExceeded) {
			w.Header().Set("Retry-After", retryAfter(err))
			s.writeErr(w, http.StatusTooManyRequests, err)
		} else {
			s.writeErr(w, http.StatusServiceUnavailable, err)
		}
		return nil, false
	}
	return release, true
}

// retryAfter renders the Retry-After header for a shed: the gate's
// estimate of when the tenant's token bucket refills (or the queue
// drains), in whole seconds rounded up, minimum 1.
func retryAfter(err error) string {
	var shed *servecache.ShedError
	if errors.As(err, &shed) && shed.RetryAfter > 0 {
		secs := int64(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		return strconv.FormatInt(secs, 10)
	}
	return "1"
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("question is required"))
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx := r.Context()
	if req.Analyze {
		ctx = core.WithAnalyze(ctx)
	}
	// The middleware starts traces before the body is readable, so an
	// explain request that sampling skipped starts its own forced trace
	// here (forced traces also get notable retention).
	if req.Explain && s.tracer != nil && !obs.SpanFrom(ctx).Recording() {
		var root *obs.Span
		ctx, root = s.tracer.StartTrace(ctx, "POST /api/v1/ask", obs.Forced())
		if root.Recording() {
			root.SetAttr("http.method", r.Method)
			root.SetAttr("http.path", r.URL.Path)
			w.Header().Set(TraceIDHeader, root.TraceID())
			defer root.End()
		}
	}
	var (
		ans    *core.Answer
		status = servecache.StatusBypass
		err    error
	)
	if s.front != nil {
		// Explain and analyze requests bypass: a cached answer's trace_id
		// points at the original computation, and an analyzed plan only
		// exists for a fresh execution.
		ans, status, err = s.front.Do(ctx, req.Question, req.NoCache || req.Explain || req.Analyze)
	} else {
		ans, err = s.copilot.Ask(ctx, req.Question)
	}
	if cached := status == servecache.StatusHit || status == servecache.StatusCoalesced; cached {
		w.Header().Set(CacheHeader, "hit")
	} else if status == servecache.StatusMiss {
		w.Header().Set(CacheHeader, "miss")
	} else {
		w.Header().Set(CacheHeader, "bypass")
	}
	if err != nil {
		obs.SpanFrom(ctx).SetError(err)
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := askResponse{
		Status: "success", Question: ans.Question, Task: ans.Task.String(),
		Query: ans.Query, Answer: ans.ValueText, Dashboard: ans.Dashboard,
		CostCents: ans.CostCents, TraceID: ans.TraceID,
		AnalyzedPlan: ans.AnalyzedPlan,
	}
	if ans.ExecErr != nil {
		resp.ExecError = ans.ExecErr.Error()
	}
	for _, m := range ans.Metrics {
		resp.Metrics = append(resp.Metrics, askMetric{Name: m.Name, Description: m.Description})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// queryData is the Prometheus-style result envelope.
type queryData struct {
	Status string `json:"status"`
	Data   struct {
		ResultType string `json:"resultType"`
		Result     any    `json:"result"`
	} `json:"data"`
}

// wireVector marshals an instant vector in Prometheus wire form.
func wireVector(v promql.Vector) []map[string]any {
	out := make([]map[string]any, 0, len(v))
	for _, s := range v {
		out = append(out, map[string]any{
			"metric": s.Labels.Map(),
			"value":  [2]any{float64(s.T) / 1000, strconv.FormatFloat(s.V, 'g', -1, 64)},
		})
	}
	return out
}

func wireMatrix(m promql.Matrix) []map[string]any {
	out := make([]map[string]any, 0, len(m))
	for _, s := range m {
		values := make([][2]any, 0, len(s.Samples))
		for _, smp := range s.Samples {
			values = append(values, [2]any{float64(smp.T) / 1000, strconv.FormatFloat(smp.V, 'g', -1, 64)})
		}
		out = append(out, map[string]any{"metric": s.Labels.Map(), "values": values})
	}
	return out
}

// parseTime accepts RFC3339 or Unix seconds; zero value means defaultT.
func parseTime(s string, defaultT time.Time) (time.Time, error) {
	if s == "" {
		return defaultT, nil
	}
	if ts, err := strconv.ParseFloat(s, 64); err == nil {
		return time.UnixMilli(int64(ts * 1000)), nil
	}
	return time.Parse(time.RFC3339, s)
}

// latest returns the newest sample instant in the store.
func (s *Server) latest() time.Time {
	if _, maxT, ok := s.copilot.Executor().Engine().DB().TimeRange(); ok {
		return time.UnixMilli(maxT)
	}
	return time.Unix(0, 0)
}

// defaultEvalTime resolves the default evaluation instant for query: the
// newest sample among the metrics it selects, falling back to the
// store-wide newest sample. The store mixes timelines once self-scraping
// is on (the operator trace is frozen while dio_* series advance at wall
// clock), so "now" must follow the data actually being queried. Parse
// errors fall through to the sandbox, which reports them properly.
func (s *Server) defaultEvalTime(query string) time.Time {
	expr, err := promql.Parse(query)
	if err != nil {
		return s.latest()
	}
	db := s.copilot.Executor().Engine().DB()
	var newest int64
	found := false
	promql.Walk(expr, func(n promql.Expr) {
		vs, ok := n.(*promql.VectorSelector)
		if !ok || vs.Name == "" {
			return
		}
		if _, maxT, ok := db.MetricTimeRange(vs.Name); ok && (!found || maxT > newest) {
			newest, found = maxT, true
		}
	})
	if found {
		return time.UnixMilli(newest)
	}
	return s.latest()
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("query")
	if q == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("query parameter is required"))
		return
	}
	ts, err := parseTime(r.URL.Query().Get("time"), s.defaultEvalTime(q))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad time: %w", err))
		return
	}
	v, err := s.copilot.Executor().Execute(r.Context(), q, ts)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, sandbox.ErrRejected) {
			code = http.StatusForbidden
		}
		s.writeErr(w, code, err)
		return
	}
	var resp queryData
	resp.Status = "success"
	switch x := v.(type) {
	case promql.Scalar:
		resp.Data.ResultType = "scalar"
		resp.Data.Result = [2]any{float64(x.T) / 1000, strconv.FormatFloat(x.V, 'g', -1, 64)}
	case promql.Vector:
		resp.Data.ResultType = "vector"
		resp.Data.Result = wireVector(x)
	case promql.Matrix:
		resp.Data.ResultType = "matrix"
		resp.Data.Result = wireMatrix(x)
	default:
		resp.Data.ResultType = "string"
		resp.Data.Result = promql.FormatValue(v)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	q := qv.Get("query")
	if q == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("query parameter is required"))
		return
	}
	end, err := parseTime(qv.Get("end"), s.defaultEvalTime(q))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad end: %w", err))
		return
	}
	start, err := parseTime(qv.Get("start"), end.Add(-time.Hour))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad start: %w", err))
		return
	}
	step := time.Minute
	if sv := qv.Get("step"); sv != "" {
		d, err := promql.ParseDuration(sv)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad step: %w", err))
			return
		}
		step = d
	}
	m, err := s.copilot.Executor().ExecuteRange(r.Context(), q, start, end, step)
	if err != nil {
		s.writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	var resp queryData
	resp.Status = "success"
	resp.Data.ResultType = "matrix"
	resp.Data.Result = wireMatrix(m)
	s.writeJSON(w, http.StatusOK, resp)
}

// metricInfo is the catalog search result row.
type metricInfo struct {
	Name        string `json:"name"`
	NF          string `json:"nf"`
	Type        string `json:"type"`
	Description string `json:"description"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	q := strings.ToLower(r.URL.Query().Get("q"))
	limit := 50
	if lv := r.URL.Query().Get("limit"); lv != "" {
		if n, err := strconv.Atoi(lv); err == nil && n > 0 {
			limit = n
		}
	}
	var out []metricInfo
	for _, m := range s.copilot.Catalog().MetricsSnapshot() {
		if q != "" && !strings.Contains(strings.ToLower(m.Name), q) &&
			!strings.Contains(strings.ToLower(m.Description), q) {
			continue
		}
		out = append(out, metricInfo{Name: m.Name, NF: m.NF, Type: m.Type.String(), Description: m.Description})
		if len(out) >= limit {
			break
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "success", "metrics": out})
}

func (s *Server) handleFeedbackList(w http.ResponseWriter, _ *http.Request) {
	if s.tracker == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "success", "issues": s.tracker.List(-1)})
}

// feedbackOpenRequest is the POST /api/v1/feedback body: re-ask the
// question and open an issue from the copilot's own answer (the
// raised-hand button of §3.4).
type feedbackOpenRequest struct {
	Question string `json:"question"`
}

func (s *Server) handleFeedbackOpen(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	var req feedbackOpenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Question) == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("question is required"))
		return
	}
	// Feedback re-asks run the full pipeline too, so they compete for the
	// same admission slots as /api/v1/ask.
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ans, err := s.copilot.Ask(r.Context(), req.Question)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	issue := feedback.OpenFromAnswer(s.tracker, ans)
	s.writeJSON(w, http.StatusCreated, map[string]any{"status": "success", "issue": issue})
}

// resolveRequest is the POST /api/v1/feedback/{id}/resolve body.
type resolveRequest struct {
	Expert       string `json:"expert"`
	MetricName   string `json:"metric_name"`
	Description  string `json:"description"`
	FunctionName string `json:"function_name,omitempty"`
	FunctionTmpl string `json:"function_template,omitempty"`
	FunctionArgs int    `json:"function_arity,omitempty"`
}

func (s *Server) handleFeedbackResolve(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad issue id: %w", err))
		return
	}
	var req resolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	err = s.tracker.Resolve(id, req.Expert, feedback.Contribution{
		MetricName: req.MetricName, Description: req.Description,
		FunctionName: req.FunctionName, FunctionTemplate: req.FunctionTmpl,
		FunctionArity: req.FunctionArgs,
	})
	switch {
	case errors.Is(err, feedback.ErrUnknownIssue):
		s.writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, feedback.ErrNotExpert):
		s.writeErr(w, http.StatusForbidden, err)
	case err != nil:
		s.writeErr(w, http.StatusBadRequest, err)
	default:
		issue, _ := s.tracker.Get(id)
		s.writeJSON(w, http.StatusOK, map[string]any{"status": "success", "issue": issue})
	}
}

// proposeRequest is the POST /api/v1/feedback/{id}/propose body: a
// community contribution awaiting expert votes (the Stack Overflow-style
// mechanism of §3.4's future work).
type proposeRequest struct {
	Author       string `json:"author"`
	MetricName   string `json:"metric_name"`
	Description  string `json:"description"`
	FunctionName string `json:"function_name,omitempty"`
	FunctionTmpl string `json:"function_template,omitempty"`
	FunctionArgs int    `json:"function_arity,omitempty"`
}

func (s *Server) handleProposalOpen(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad issue id: %w", err))
		return
	}
	var req proposeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	p, err := s.tracker.Propose(id, req.Author, feedback.Contribution{
		MetricName: req.MetricName, Description: req.Description,
		FunctionName: req.FunctionName, FunctionTemplate: req.FunctionTmpl,
		FunctionArity: req.FunctionArgs,
	})
	switch {
	case errors.Is(err, feedback.ErrUnknownIssue):
		s.writeErr(w, http.StatusNotFound, err)
	case err != nil:
		s.writeErr(w, http.StatusBadRequest, err)
	default:
		s.writeJSON(w, http.StatusCreated, map[string]any{"status": "success", "proposal": p})
	}
}

func (s *Server) handleProposalList(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	issueID := -1
	if v := r.URL.Query().Get("issue"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad issue filter: %w", err))
			return
		}
		issueID = n
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "success", "proposals": s.tracker.Proposals(issueID)})
}

// voteRequest is the POST /api/v1/proposals/{id}/vote body.
type voteRequest struct {
	Expert string `json:"expert"`
	Up     bool   `json:"up"`
}

func (s *Server) handleProposalVote(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("feedback is not enabled"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad proposal id: %w", err))
		return
	}
	var req voteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	err = s.tracker.Vote(id, req.Expert, req.Up)
	switch {
	case errors.Is(err, feedback.ErrUnknownProposal):
		s.writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, feedback.ErrNotExpert), errors.Is(err, feedback.ErrSelfVote):
		s.writeErr(w, http.StatusForbidden, err)
	case err != nil:
		s.writeErr(w, http.StatusBadRequest, err)
	default:
		s.writeJSON(w, http.StatusOK, map[string]any{"status": "success"})
	}
}

// handleAudit returns the sandbox's query audit log, newest last.
func (s *Server) handleAudit(w http.ResponseWriter, _ *http.Request) {
	a := s.copilot.Executor().Audit()
	if a == nil {
		s.writeErr(w, http.StatusNotImplemented, errors.New("auditing is not enabled"))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "success", "entries": a.Entries()})
}
