package httpapi_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"dio/internal/core"
	"dio/internal/feedback"
	"dio/internal/httpapi"
	"dio/internal/llm"
	"dio/internal/testenv"
)

// newServer builds the handler over the shared fixture.
func newServer(t *testing.T) http.Handler {
	t.Helper()
	cat, db, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4"), Retriever: r})
	if err != nil {
		t.Fatal(err)
	}
	tracker := feedback.NewTracker([]string{"alice"}, func() time.Time {
		return time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	})
	feedback.WireCopilot(tracker, cp)
	return httpapi.New(cp, tracker, nil)
}

func do(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(data)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rdr)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	out := make(map[string]any)
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, path, w.Body.String())
	}
	return w, out
}

func TestHealthz(t *testing.T) {
	h := newServer(t)
	w, out := do(t, h, "GET", "/healthz", nil)
	if w.Code != 200 || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", w.Code, out)
	}
}

func TestAsk(t *testing.T) {
	h := newServer(t)
	w, out := do(t, h, "POST", "/api/v1/ask", map[string]string{"question": "How many PDU sessions are currently active?"})
	if w.Code != 200 {
		t.Fatalf("ask = %d %v", w.Code, out)
	}
	if out["query"] == "" || out["answer"] == "" {
		t.Fatalf("incomplete answer: %v", out)
	}
	if !strings.Contains(out["query"].(string), "smfsm_pdu_sessions_active") {
		t.Errorf("query = %v", out["query"])
	}
	if out["cost_cents"].(float64) <= 0 {
		t.Error("no cost accounting")
	}
	metrics := out["metrics"].([]any)
	if len(metrics) == 0 {
		t.Error("no metrics in answer")
	}
}

func TestAskValidation(t *testing.T) {
	h := newServer(t)
	if w, _ := do(t, h, "POST", "/api/v1/ask", map[string]string{"question": "  "}); w.Code != 400 {
		t.Errorf("blank question = %d", w.Code)
	}
	req := httptest.NewRequest("POST", "/api/v1/ask", strings.NewReader("{"))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 400 {
		t.Errorf("bad JSON = %d", w.Code)
	}
	// Wrong method.
	req = httptest.NewRequest("GET", "/api/v1/ask", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 405 {
		t.Errorf("GET ask = %d, want 405", w.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	h := newServer(t)
	w, out := do(t, h, "GET", "/api/v1/query?query="+escape("sum(smfsm_pdu_sessions_active)"), nil)
	if w.Code != 200 {
		t.Fatalf("query = %d %v", w.Code, out)
	}
	data := out["data"].(map[string]any)
	if data["resultType"] != "vector" {
		t.Errorf("resultType = %v", data["resultType"])
	}
	result := data["result"].([]any)
	if len(result) != 1 {
		t.Fatalf("result = %v", result)
	}
}

func TestQueryErrors(t *testing.T) {
	h := newServer(t)
	if w, _ := do(t, h, "GET", "/api/v1/query", nil); w.Code != 400 {
		t.Errorf("missing query = %d", w.Code)
	}
	if w, _ := do(t, h, "GET", "/api/v1/query?query="+escape("sum("), nil); w.Code != 422 {
		t.Errorf("parse error = %d", w.Code)
	}
	// The sandbox rejects unselective scans with 403.
	if w, _ := do(t, h, "GET", "/api/v1/query?query="+escape(`{instance="pod-0"}`), nil); w.Code != 403 {
		t.Errorf("unselective query = %d, want 403", w.Code)
	}
	if w, _ := do(t, h, "GET", "/api/v1/query?query=up&time=notatime", nil); w.Code != 400 {
		t.Errorf("bad time = %d", w.Code)
	}
}

func TestQueryRangeEndpoint(t *testing.T) {
	h := newServer(t)
	w, out := do(t, h, "GET", "/api/v1/query_range?query="+escape("sum(smfsm_pdu_sessions_active)")+"&step=5m", nil)
	if w.Code != 200 {
		t.Fatalf("query_range = %d %v", w.Code, out)
	}
	data := out["data"].(map[string]any)
	if data["resultType"] != "matrix" {
		t.Errorf("resultType = %v", data["resultType"])
	}
	series := data["result"].([]any)
	if len(series) != 1 {
		t.Fatalf("series = %v", series)
	}
	values := series[0].(map[string]any)["values"].([]any)
	if len(values) < 2 {
		t.Errorf("too few points: %d", len(values))
	}
	if w, _ := do(t, h, "GET", "/api/v1/query_range?query=up&step=bogus", nil); w.Code != 400 {
		t.Errorf("bad step = %d", w.Code)
	}
}

func TestMetricsSearch(t *testing.T) {
	h := newServer(t)
	w, out := do(t, h, "GET", "/api/v1/metrics?q=initial_registration&limit=5", nil)
	if w.Code != 200 {
		t.Fatalf("metrics = %d", w.Code)
	}
	hits := out["metrics"].([]any)
	if len(hits) == 0 || len(hits) > 5 {
		t.Fatalf("hits = %d", len(hits))
	}
	first := hits[0].(map[string]any)
	if !strings.Contains(first["name"].(string), "initial_registration") {
		t.Errorf("first hit = %v", first)
	}
	if first["description"] == "" {
		t.Error("hit has no description")
	}
}

func TestFeedbackFlow(t *testing.T) {
	h := newServer(t)
	// Open an issue via the raised-hand endpoint.
	w, out := do(t, h, "POST", "/api/v1/feedback", map[string]string{"question": "What is the flux capacitor saturation?"})
	if w.Code != 201 {
		t.Fatalf("open = %d %v", w.Code, out)
	}
	issue := out["issue"].(map[string]any)
	id := int(issue["id"].(float64))
	if issue["state"].(float64) != 0 {
		t.Errorf("state = %v", issue["state"])
	}

	// List shows it.
	_, out = do(t, h, "GET", "/api/v1/feedback", nil)
	if n := len(out["issues"].([]any)); n != 1 {
		t.Fatalf("issue list = %d", n)
	}

	// Non-expert resolution → 403.
	w, _ = do(t, h, "POST", fmt.Sprintf("/api/v1/feedback/%d/resolve", id), map[string]any{
		"expert": "mallory", "metric_name": "m", "description": "d",
	})
	if w.Code != 403 {
		t.Errorf("non-expert resolve = %d", w.Code)
	}

	// Expert resolution → 200 and attributed.
	w, out = do(t, h, "POST", fmt.Sprintf("/api/v1/feedback/%d/resolve", id), map[string]any{
		"expert": "alice", "metric_name": "amfcc_initial_registration_attempt",
		"description": "The flux capacitor saturation is the total of initial registration attempts.",
	})
	if w.Code != 200 {
		t.Fatalf("resolve = %d %v", w.Code, out)
	}
	if out["issue"].(map[string]any)["expert"] != "alice" {
		t.Errorf("attribution missing: %v", out["issue"])
	}

	// Unknown issue → 404.
	w, _ = do(t, h, "POST", "/api/v1/feedback/999/resolve", map[string]any{
		"expert": "alice", "metric_name": "m", "description": "d",
	})
	if w.Code != 404 {
		t.Errorf("unknown issue = %d", w.Code)
	}
	// Bad id → 400.
	w, _ = do(t, h, "POST", "/api/v1/feedback/abc/resolve", map[string]any{})
	if w.Code != 400 {
		t.Errorf("bad id = %d", w.Code)
	}
}

func escape(q string) string {
	r := strings.NewReplacer(" ", "%20", "{", "%7B", "}", "%7D", `"`, "%22", "=", "%3D", "[", "%5B", "]", "%5D", "(", "%28", ")", "%29")
	return r.Replace(q)
}

func TestProposalVotingFlow(t *testing.T) {
	h := newServer(t)
	// Open an issue.
	w, out := do(t, h, "POST", "/api/v1/feedback", map[string]string{"question": "What is the warp core utilisation?"})
	if w.Code != 201 {
		t.Fatalf("open = %d %v", w.Code, out)
	}
	id := int(out["issue"].(map[string]any)["id"].(float64))

	// A community member proposes a resolution.
	w, out = do(t, h, "POST", fmt.Sprintf("/api/v1/feedback/%d/propose", id), map[string]any{
		"author": "community.user", "metric_name": "smf_system_cpu_usage_percent",
		"description": "Warp core utilisation is the SMF CPU utilisation.",
	})
	if w.Code != 201 {
		t.Fatalf("propose = %d %v", w.Code, out)
	}
	pid := int(out["proposal"].(map[string]any)["id"].(float64))

	// Listing shows it.
	_, out = do(t, h, "GET", fmt.Sprintf("/api/v1/proposals?issue=%d", id), nil)
	if n := len(out["proposals"].([]any)); n != 1 {
		t.Fatalf("proposal list = %d", n)
	}

	// Non-expert vote → 403.
	w, _ = do(t, h, "POST", fmt.Sprintf("/api/v1/proposals/%d/vote", pid), map[string]any{"expert": "mallory", "up": true})
	if w.Code != 403 {
		t.Errorf("non-expert vote = %d", w.Code)
	}
	// One expert vote (threshold is 2 → still pending). Note newServer
	// registers a single expert, so HTTP acceptance is covered by the
	// package-level feedback tests; here we check wiring and status codes.
	w, _ = do(t, h, "POST", fmt.Sprintf("/api/v1/proposals/%d/vote", pid), map[string]any{"expert": "alice", "up": true})
	if w.Code != 200 {
		t.Errorf("expert vote = %d", w.Code)
	}
	// Unknown proposal → 404.
	w, _ = do(t, h, "POST", "/api/v1/proposals/999/vote", map[string]any{"expert": "alice", "up": true})
	if w.Code != 404 {
		t.Errorf("unknown proposal vote = %d", w.Code)
	}
	// Bad issue id on propose → 400; unknown issue → 404.
	w, _ = do(t, h, "POST", "/api/v1/feedback/abc/propose", map[string]any{})
	if w.Code != 400 {
		t.Errorf("bad propose id = %d", w.Code)
	}
	w, _ = do(t, h, "POST", "/api/v1/feedback/999/propose", map[string]any{
		"author": "x", "metric_name": "m", "description": "d",
	})
	if w.Code != 404 {
		t.Errorf("unknown propose issue = %d", w.Code)
	}
}

func TestAuditEndpoint(t *testing.T) {
	h := newServer(t)
	// Run a query through the service, then read the audit trail.
	do(t, h, "GET", "/api/v1/query?query="+escape("sum(smfsm_pdu_sessions_active)"), nil)
	w, out := do(t, h, "GET", "/api/v1/audit", nil)
	if w.Code != 200 {
		t.Fatalf("audit = %d", w.Code)
	}
	entries := out["entries"].([]any)
	if len(entries) == 0 {
		t.Fatal("audit trail empty after a query")
	}
	last := entries[len(entries)-1].(map[string]any)
	if last["outcome"] != "executed" {
		t.Errorf("last audit outcome = %v", last["outcome"])
	}
	if !strings.Contains(last["query"].(string), "smfsm_pdu_sessions_active") {
		t.Errorf("audited query = %v", last["query"])
	}
}

func queryEscape(q string) string { return url.QueryEscape(q) }

func TestDebugPlan(t *testing.T) {
	h := newServer(t)
	w, out := do(t, h, "GET", "/debug/plan?query="+queryEscape("sum by (instance)(rate(amfcc_n1_auth_request[5m]))"), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", w.Code, w.Body.String())
	}
	plan, _ := out["plan"].(string)
	for _, want := range []string{"plan for:", "range-hints", "window [5m] scan #0"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}

	w, _ = do(t, h, "GET", "/debug/plan", nil)
	if w.Code != http.StatusBadRequest {
		t.Errorf("missing query: status = %d", w.Code)
	}
	w, _ = do(t, h, "GET", "/debug/plan?query="+queryEscape("sum by ("), nil)
	if w.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad query: status = %d", w.Code)
	}
}
