package httpapi_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dio/internal/core"
	"dio/internal/feedback"
	"dio/internal/httpapi"
	"dio/internal/ingest"
	"dio/internal/llm"
	"dio/internal/testenv"
	"dio/internal/tsdb"
)

// newWriteServer builds a handler whose TSDB is the durable ingest store,
// exactly as dio-server wires it with -data-dir.
func newWriteServer(t *testing.T) (http.Handler, *ingest.Store) {
	t.Helper()
	cat, _, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	st, err := ingest.OpenStore(t.TempDir(), ingest.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cp, err := core.New(core.Config{Catalog: cat, TSDB: st.DB(), Model: llm.MustNew("gpt-4"), Retriever: r})
	if err != nil {
		t.Fatal(err)
	}
	tracker := feedback.NewTracker([]string{"alice"}, nil)
	return httpapi.New(cp, tracker, nil, httpapi.WithIngest(st)), st
}

func TestWriteEndpointBinary(t *testing.T) {
	h, st := newWriteServer(t)
	srv := httptest.NewServer(h)
	defer srv.Close()
	cli := ingest.NewClient(srv.URL, 5*time.Second)
	batch := []ingest.TimeSeries{{
		Labels: tsdb.FromMap(map[string]string{"__name__": "dl_throughput_bytes", "ue": "ue01"}),
		Samples: []tsdb.Sample{
			{T: 1000, V: 10}, {T: 16000, V: 20}, {T: 31000, V: 30},
		},
	}}
	res, err := cli.Push(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 3 || res.OutOfOrder != 0 || res.Duplicate != 0 {
		t.Fatalf("push accounting = %+v", res)
	}
	if got := st.DB().NumSamples(); got != 3 {
		t.Fatalf("store holds %d samples, want 3", got)
	}

	// Re-pushing the identical batch: older samples drop as out-of-order;
	// the head sample is an idempotent accept (it is already present with
	// the same value, so acknowledging it again is truthful).
	res, err = cli.Push(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 1 || res.OutOfOrder != 2 || res.Duplicate != 0 {
		t.Fatalf("idempotent re-push accounting = %+v", res)
	}
	if got := st.DB().NumSamples(); got != 3 {
		t.Fatalf("re-push changed the store: %d samples", got)
	}
	conflict := []ingest.TimeSeries{{
		Labels:  batch[0].Labels,
		Samples: []tsdb.Sample{{T: 31000, V: 999}, {T: 46000, V: 40}},
	}}
	res, err = cli.Push(context.Background(), conflict)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 1 || res.Duplicate != 1 {
		t.Fatalf("conflict accounting = %+v", res)
	}
}

func TestWriteEndpointJSON(t *testing.T) {
	h, st := newWriteServer(t)
	body := `{"series":[{"labels":{"__name__":"up","job":"gnb"},"samples":[[1000,1],[16000,0]]}]}`
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/write", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := st.DB().NumSamples(); got != 2 {
		t.Fatalf("store holds %d samples, want 2", got)
	}
}

func TestWriteEndpointRejectsBadPayload(t *testing.T) {
	h, st := newWriteServer(t)
	for name, req := range map[string]*http.Request{
		"garbage binary": httptest.NewRequest(http.MethodPost, "/api/v1/write",
			strings.NewReader("DWR1 this is not a write request")),
		"nameless series": httptest.NewRequest(http.MethodPost, "/api/v1/write",
			strings.NewReader(`{"series":[{"labels":{"job":"x"},"samples":[[1,1]]}]}`)),
		"unknown content type": httptest.NewRequest(http.MethodPost, "/api/v1/write",
			strings.NewReader(`x`)),
	} {
		switch name {
		case "garbage binary":
			req.Header.Set("Content-Type", ingest.ContentTypeBinary)
		case "unknown content type":
			req.Header.Set("Content-Type", "text/plain")
		default:
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
	if got := st.DB().NumSamples(); got != 0 {
		t.Fatalf("rejected payloads stored %d samples", got)
	}
}
