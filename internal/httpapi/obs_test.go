package httpapi_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dio/internal/core"
	"dio/internal/feedback"
	"dio/internal/httpapi"
	"dio/internal/llm"
	"dio/internal/obs"
	"dio/internal/testenv"
	"dio/internal/tsdb"
)

// newObsServer builds a handler over its own fresh TSDB (so self-scrape
// appends don't mutate the shared fixture), instrumented with reg.
func newObsServer(t *testing.T, reg *obs.Registry, db *tsdb.DB) http.Handler {
	t.Helper()
	cat, _, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{
		Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4"), Retriever: r,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tracker := feedback.NewTracker([]string{"alice"}, nil)
	return httpapi.New(cp, tracker, nil, httpapi.WithMetrics(reg))
}

// TestMetricsExposition checks GET /metrics serves Prometheus text with
// the pipeline histogram and the per-route request counters.
func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	h := newObsServer(t, reg, tsdb.New())

	// Generate request traffic so the per-route counters have children:
	// one success and one handler error.
	for _, path := range []string{"/healthz", "/api/v1/query"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", w.Code)
	}
	if got := w.Header().Get("Content-Type"); got != obs.TextContentType {
		t.Errorf("Content-Type = %q, want %q", got, obs.TextContentType)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE dio_ask_duration_seconds histogram",
		`dio_ask_duration_seconds_bucket{le="+Inf"} 0`,
		"# TYPE dio_http_requests_total counter",
		`dio_http_requests_total{route="GET /healthz",code="200"} 1`,
		`dio_http_requests_total{route="GET /api/v1/query",code="400"} 1`,
		`dio_http_request_duration_seconds_count{route="GET /healthz"} 1`,
		"# TYPE dio_sandbox_queries_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n--- body:\n%s", want, body)
		}
	}
}

// TestMetricsNotEnabled checks the endpoint degrades to 501 without a
// registry.
func TestMetricsNotEnabled(t *testing.T) {
	h := newServer(t) // plain server, no WithMetrics
	w, out := do(t, h, "GET", "/metrics", nil)
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("GET /metrics = %d, want 501", w.Code)
	}
	if out["status"] != "error" {
		t.Errorf("error envelope missing: %v", out)
	}
}

// TestQueryDioSeries is the dogfooding acceptance path: self-scrape the
// registry into the TSDB, then read a dio_* series back over the query
// API without an explicit time parameter (the metric-aware default must
// pick the dio_* timeline, not the frozen operator trace's).
func TestQueryDioSeries(t *testing.T) {
	reg := obs.NewRegistry()
	db := tsdb.New()
	// An unrelated "operator" sample far in the past: the store-wide
	// newest sample must NOT be used for the dio_* query default time.
	if err := db.Append(tsdb.FromMap(map[string]string{"__name__": "op_metric"}), 1000, 1); err != nil {
		t.Fatal(err)
	}
	h := newObsServer(t, reg, db)

	// Traffic, then scrape it into the store.
	for i := 0; i < 3; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	}
	scraper := obs.NewSelfScraper(reg, db, time.Second, nil)
	if appended, failed := scraper.ScrapeOnce(); appended == 0 || failed != 0 {
		t.Fatalf("ScrapeOnce appended %d, failed %d", appended, failed)
	}

	w, out := do(t, h, "GET", "/api/v1/query?query=dio_http_requests_total", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("query = %d: %v", w.Code, out)
	}
	data := out["data"].(map[string]any)
	result := data["result"].([]any)
	if len(result) == 0 {
		t.Fatal("dio_http_requests_total returned no series after self-scrape")
	}
	series := result[0].(map[string]any)
	labels := series["metric"].(map[string]any)
	if labels["job"] != obs.SelfScrapeJobLabel {
		t.Errorf("series job label = %v, want %q", labels["job"], obs.SelfScrapeJobLabel)
	}
}
