// Package testenv builds the shared heavyweight test fixture: the full
// catalog, a populated TSDB trace and a trained retriever. Building these
// once per process keeps the integration-test suites fast.
package testenv

import (
	"sync"
	"time"

	"dio/internal/catalog"
	"dio/internal/core"
	"dio/internal/fivegsim"
	"dio/internal/tsdb"
)

var (
	once      sync.Once
	cat       *catalog.Database
	db        *tsdb.DB
	retriever *core.Retriever
	buildErr  error
)

// build populates the fixture with a 20-minute trace (enough history for
// [5m] windows and lookback, cheap to generate).
func build() {
	cat = catalog.Generate()
	db = tsdb.New()
	cfg := fivegsim.DefaultConfig()
	cfg.Duration = 20 * time.Minute
	if _, err := fivegsim.Populate(db, cat, cfg); err != nil {
		buildErr = err
		return
	}
	retriever, buildErr = core.NewRetriever(cat, nil)
}

// Env returns the shared fixture. The catalog and retriever must be
// treated as read-only by callers (expert-contribution tests build their
// own copies).
func Env() (*catalog.Database, *tsdb.DB, *core.Retriever, error) {
	once.Do(build)
	return cat, db, retriever, buildErr
}

// Latest returns the newest sample instant of the shared trace.
func Latest() time.Time {
	once.Do(build)
	if db == nil {
		return time.Time{}
	}
	if _, maxT, ok := db.TimeRange(); ok {
		return time.UnixMilli(maxT)
	}
	return time.Time{}
}
