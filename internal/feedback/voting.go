package feedback

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// This file implements the paper's §3.4 future-work extension: "expand the
// pool of experts or adopt a voting mechanism, similar to Stack Overflow".
// Any user may *propose* a contribution for an open issue; pre-identified
// experts vote on proposals; a proposal that reaches the acceptance
// threshold of net up-votes is applied exactly like a direct expert
// resolution, attributed to its author and endorsing voters.

// ProposalState is the lifecycle of a community proposal.
type ProposalState int

// Proposal states.
const (
	Pending ProposalState = iota
	Accepted
	Rejected
)

// String names the state.
func (s ProposalState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Accepted:
		return "accepted"
	case Rejected:
		return "rejected"
	}
	return "unknown"
}

// Proposal is one community-contributed resolution awaiting votes.
type Proposal struct {
	ID           int           `json:"id"`
	IssueID      int           `json:"issue_id"`
	Author       string        `json:"author"`
	Contribution Contribution  `json:"contribution"`
	State        ProposalState `json:"state"`
	CreatedAt    time.Time     `json:"created_at"`
	// Votes maps expert → +1 (up) or -1 (down). One vote per expert,
	// revisable while pending.
	Votes map[string]int `json:"votes"`
}

// Score returns the net vote balance.
func (p *Proposal) Score() int {
	s := 0
	for _, v := range p.Votes {
		s += v
	}
	return s
}

// Voting errors.
var (
	ErrUnknownProposal = errors.New("feedback: unknown proposal")
	ErrProposalClosed  = errors.New("feedback: proposal is not pending")
	ErrSelfVote        = errors.New("feedback: authors cannot vote on their own proposal")
)

// DefaultAcceptThreshold is the net up-votes required to accept a
// proposal; DefaultRejectThreshold the net down-votes to reject it.
const (
	DefaultAcceptThreshold = 2
	DefaultRejectThreshold = -2
)

// Propose files a community contribution for an open issue. Unlike
// Resolve, any author may propose; acceptance is gated by expert votes.
func (t *Tracker) Propose(issueID int, author string, c Contribution) (*Proposal, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	is, ok := t.issues[issueID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownIssue, issueID)
	}
	if is.State != Open {
		return nil, fmt.Errorf("%w: %d is %s", ErrAlreadyClosed, issueID, is.State)
	}
	if c.MetricName == "" || c.Description == "" {
		return nil, errors.New("feedback: proposal requires a metric name and description")
	}
	if t.proposals == nil {
		t.proposals = make(map[int]*Proposal)
	}
	p := &Proposal{
		ID: t.nextProposal + 1, IssueID: issueID, Author: author,
		Contribution: c, State: Pending, CreatedAt: t.clock(),
		Votes: make(map[string]int),
	}
	t.nextProposal++
	t.proposals[p.ID] = p
	return p, nil
}

// Proposals returns proposals for an issue (all issues when issueID < 0),
// ordered by id.
func (t *Tracker) Proposals(issueID int) []*Proposal {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Proposal, 0, len(t.proposals))
	for _, p := range t.proposals {
		if issueID < 0 || p.IssueID == issueID {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Vote records an expert's up/down vote. When the proposal's net score
// reaches the accept threshold it is applied (resolving its issue,
// attributed to the author with voter endorsement); at the reject
// threshold it is discarded. Only pre-identified experts vote; authors
// cannot vote for themselves.
func (t *Tracker) Vote(proposalID int, expert string, up bool) error {
	t.mu.Lock()
	p, ok := t.proposals[proposalID]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownProposal, proposalID)
	}
	if !t.experts[expert] {
		t.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotExpert, expert)
	}
	if p.State != Pending {
		t.mu.Unlock()
		return fmt.Errorf("%w: %d is %s", ErrProposalClosed, proposalID, p.State)
	}
	if expert == p.Author {
		t.mu.Unlock()
		return ErrSelfVote
	}
	v := 1
	if !up {
		v = -1
	}
	p.Votes[expert] = v

	switch score := p.Score(); {
	case score >= DefaultAcceptThreshold:
		p.State = Accepted
		// Apply as a resolution attributed to the author, endorsed by the
		// up-voting experts.
		is, ok := t.issues[p.IssueID]
		if ok && is.State == Open {
			is.State = Resolved
			is.Expert = p.Author + " (community, accepted by " + votersList(p) + ")"
			is.ResolvedAt = t.clock()
			cc := p.Contribution
			is.Resolution = &cc
		}
		appliers := append([]Applier(nil), t.appliers...)
		t.mu.Unlock()
		for _, fn := range appliers {
			if err := fn(p.Contribution, p.Author); err != nil {
				return fmt.Errorf("feedback: applying accepted proposal: %w", err)
			}
		}
		return nil
	case score <= DefaultRejectThreshold:
		p.State = Rejected
	}
	t.mu.Unlock()
	return nil
}

// votersList renders the sorted up-voting experts.
func votersList(p *Proposal) string {
	var ups []string
	for e, v := range p.Votes {
		if v > 0 {
			ups = append(ups, e)
		}
	}
	sort.Strings(ups)
	out := ""
	for i, e := range ups {
		if i > 0 {
			out += ", "
		}
		out += e
	}
	return out
}
