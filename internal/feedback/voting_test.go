package feedback_test

import (
	"bytes"
	"errors"
	"testing"

	"dio/internal/feedback"
)

func openIssueTracker(t *testing.T) (*feedback.Tracker, *feedback.Issue) {
	t.Helper()
	tr := feedback.NewTracker([]string{"alice", "bob", "carol"}, fixedClock)
	is := tr.Open("What is the registration storm indicator?", "", "", nil)
	return tr, is
}

func contribution() feedback.Contribution {
	return feedback.Contribution{
		MetricName:  "amfcc_initial_registration_attempt",
		Description: "The registration storm indicator.",
	}
}

func TestProposeValidation(t *testing.T) {
	tr, is := openIssueTracker(t)
	if _, err := tr.Propose(99, "user", contribution()); !errors.Is(err, feedback.ErrUnknownIssue) {
		t.Fatalf("unknown issue: %v", err)
	}
	if _, err := tr.Propose(is.ID, "user", feedback.Contribution{}); err == nil {
		t.Fatal("empty contribution accepted")
	}
	p, err := tr.Propose(is.ID, "user", contribution())
	if err != nil {
		t.Fatal(err)
	}
	if p.State != feedback.Pending || p.Score() != 0 {
		t.Fatalf("proposal = %+v", p)
	}
	// Proposals against closed issues are refused.
	if err := tr.Close(is.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Propose(is.ID, "user", contribution()); !errors.Is(err, feedback.ErrAlreadyClosed) {
		t.Fatalf("closed issue: %v", err)
	}
}

func TestVoteAcceptFlow(t *testing.T) {
	tr, is := openIssueTracker(t)
	var applied []string
	tr.OnResolve(func(c feedback.Contribution, author string) error {
		applied = append(applied, author)
		return nil
	})
	p, err := tr.Propose(is.ID, "community.user", contribution())
	if err != nil {
		t.Fatal(err)
	}

	// Non-expert cannot vote.
	if err := tr.Vote(p.ID, "mallory", true); !errors.Is(err, feedback.ErrNotExpert) {
		t.Fatalf("non-expert vote: %v", err)
	}
	// One up-vote: still pending.
	if err := tr.Vote(p.ID, "alice", true); err != nil {
		t.Fatal(err)
	}
	if got := tr.Proposals(is.ID)[0]; got.State != feedback.Pending || got.Score() != 1 {
		t.Fatalf("after one vote: %+v", got)
	}
	// Second up-vote reaches the threshold: accepted and applied.
	if err := tr.Vote(p.ID, "bob", true); err != nil {
		t.Fatal(err)
	}
	got := tr.Proposals(is.ID)[0]
	if got.State != feedback.Accepted {
		t.Fatalf("state = %s", got.State)
	}
	if len(applied) != 1 || applied[0] != "community.user" {
		t.Fatalf("appliers = %v", applied)
	}
	// The issue is resolved with community attribution.
	issue, _ := tr.Get(is.ID)
	if issue.State != feedback.Resolved {
		t.Fatalf("issue state = %s", issue.State)
	}
	if issue.Expert != "community.user (community, accepted by alice, bob)" {
		t.Fatalf("attribution = %q", issue.Expert)
	}
	// Further votes on the decided proposal are refused.
	if err := tr.Vote(p.ID, "carol", true); !errors.Is(err, feedback.ErrProposalClosed) {
		t.Fatalf("vote after accept: %v", err)
	}
}

func TestVoteRejectFlow(t *testing.T) {
	tr, is := openIssueTracker(t)
	p, _ := tr.Propose(is.ID, "community.user", contribution())
	if err := tr.Vote(p.ID, "alice", false); err != nil {
		t.Fatal(err)
	}
	if err := tr.Vote(p.ID, "bob", false); err != nil {
		t.Fatal(err)
	}
	if got := tr.Proposals(-1)[0]; got.State != feedback.Rejected {
		t.Fatalf("state = %s", got.State)
	}
	// The issue stays open for other proposals.
	issue, _ := tr.Get(is.ID)
	if issue.State != feedback.Open {
		t.Fatalf("issue state = %s", issue.State)
	}
}

func TestVoteRevision(t *testing.T) {
	tr, is := openIssueTracker(t)
	p, _ := tr.Propose(is.ID, "community.user", contribution())
	// alice flips her vote; only the latest counts.
	if err := tr.Vote(p.ID, "alice", false); err != nil {
		t.Fatal(err)
	}
	if err := tr.Vote(p.ID, "alice", true); err != nil {
		t.Fatal(err)
	}
	if got := tr.Proposals(-1)[0].Score(); got != 1 {
		t.Fatalf("score after revision = %d", got)
	}
}

func TestSelfVoteForbidden(t *testing.T) {
	tr, is := openIssueTracker(t)
	// alice (an expert) proposes and tries to vote for herself.
	p, err := tr.Propose(is.ID, "alice", contribution())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Vote(p.ID, "alice", true); !errors.Is(err, feedback.ErrSelfVote) {
		t.Fatalf("self-vote: %v", err)
	}
}

func TestVoteUnknownProposal(t *testing.T) {
	tr, _ := openIssueTracker(t)
	if err := tr.Vote(7, "alice", true); !errors.Is(err, feedback.ErrUnknownProposal) {
		t.Fatalf("unknown proposal: %v", err)
	}
}

func TestProposalsPersist(t *testing.T) {
	tr, is := openIssueTracker(t)
	p, _ := tr.Propose(is.ID, "community.user", contribution())
	if err := tr.Vote(p.ID, "alice", true); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := feedback.Load(&buf, fixedClock)
	if err != nil {
		t.Fatal(err)
	}
	got := tr2.Proposals(-1)
	if len(got) != 1 || got[0].Score() != 1 || got[0].Author != "community.user" {
		t.Fatalf("loaded proposals = %+v", got)
	}
	// Voting continues after load: bob's vote accepts it.
	if err := tr2.Vote(p.ID, "bob", true); err != nil {
		t.Fatal(err)
	}
	if tr2.Proposals(-1)[0].State != feedback.Accepted {
		t.Fatal("proposal not accepted after reload")
	}
}
