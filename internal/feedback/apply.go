package feedback

import (
	"dio/internal/catalog"
	"dio/internal/core"
)

// WireCopilot connects a tracker to a copilot's domain-specific database
// and retriever: every resolved contribution is added to the catalog
// (attributed to the expert) and re-indexed, so later questions can
// retrieve it — the "system that improves with usage" of §3.4.
func WireCopilot(t *Tracker, cp *core.Copilot) {
	t.OnResolve(func(c Contribution, expert string) error {
		m := cp.Catalog().AddExpertMetricDoc(c.MetricName, c.Description, expert)
		if err := cp.Retriever().AddDocument(catalog.Document{ID: m.Name, Text: m.Doc(), Metric: m}); err != nil {
			return err
		}
		if c.FunctionName != "" {
			fn := &catalog.FunctionDef{
				Name:        c.FunctionName,
				Description: c.Description,
				Template:    c.FunctionTemplate,
				Arity:       c.FunctionArity,
				Author:      expert,
			}
			cp.Catalog().AddFunction(fn)
			return cp.Retriever().AddDocument(catalog.Document{ID: "function:" + fn.Name, Text: fn.Doc(), Function: fn})
		}
		return nil
	})
}

// OpenFromAnswer files an issue for an unsatisfying copilot answer,
// carrying question, retrieved context, response text and query — the
// payload §3.4 specifies.
func OpenFromAnswer(t *Tracker, a *core.Answer) *Issue {
	ids := make([]string, 0, len(a.Context))
	for _, d := range a.Context {
		ids = append(ids, d.ID)
	}
	issue := t.Open(a.Question, a.ValueText, a.Query, ids)
	if a.TraceID != "" {
		t.SetTraceID(issue.ID, a.TraceID)
	}
	return issue
}
