package feedback_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dio/internal/catalog"
	"dio/internal/core"
	"dio/internal/feedback"
	"dio/internal/fivegsim"
	"dio/internal/llm"
	"dio/internal/tsdb"
)

func fixedClock() time.Time { return time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC) }

func newTracker() *feedback.Tracker {
	return feedback.NewTracker([]string{"alice", "bob"}, fixedClock)
}

func TestOpenAndList(t *testing.T) {
	tr := newTracker()
	is := tr.Open("q?", "resp", "sum(x)", []string{"m1", "m2"})
	if is.ID != 1 || is.State != feedback.Open || len(is.Context) != 2 {
		t.Fatalf("issue = %+v", is)
	}
	is2 := tr.Open("q2?", "", "", nil)
	if is2.ID != 2 {
		t.Fatalf("second id = %d", is2.ID)
	}
	if got := tr.List(feedback.Open); len(got) != 2 || got[0].ID != 1 {
		t.Fatalf("open list = %+v", got)
	}
	if got := tr.List(-1); len(got) != 2 {
		t.Fatalf("all list = %+v", got)
	}
	if _, ok := tr.Get(1); !ok {
		t.Error("Get(1) missed")
	}
	if _, ok := tr.Get(99); ok {
		t.Error("Get(99) hit")
	}
}

func TestResolveLifecycle(t *testing.T) {
	tr := newTracker()
	is := tr.Open("q?", "resp", "", nil)

	var applied []string
	tr.OnResolve(func(c feedback.Contribution, expert string) error {
		applied = append(applied, expert+":"+c.MetricName)
		return nil
	})

	// Unknown issue.
	err := tr.Resolve(99, "alice", feedback.Contribution{MetricName: "m", Description: "d"})
	if !errors.Is(err, feedback.ErrUnknownIssue) {
		t.Fatalf("want ErrUnknownIssue, got %v", err)
	}
	// Non-expert.
	err = tr.Resolve(is.ID, "mallory", feedback.Contribution{MetricName: "m", Description: "d"})
	if !errors.Is(err, feedback.ErrNotExpert) {
		t.Fatalf("want ErrNotExpert, got %v", err)
	}
	// Missing payload.
	if err := tr.Resolve(is.ID, "alice", feedback.Contribution{}); err == nil {
		t.Fatal("empty contribution accepted")
	}
	// Success.
	if err := tr.Resolve(is.ID, "alice", feedback.Contribution{MetricName: "m", Description: "d"}); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.Get(is.ID)
	if got.State != feedback.Resolved || got.Expert != "alice" || got.Resolution == nil {
		t.Fatalf("resolved issue = %+v", got)
	}
	if len(applied) != 1 || applied[0] != "alice:m" {
		t.Fatalf("appliers = %v", applied)
	}
	// Double resolution.
	err = tr.Resolve(is.ID, "bob", feedback.Contribution{MetricName: "m", Description: "d"})
	if !errors.Is(err, feedback.ErrAlreadyClosed) {
		t.Fatalf("want ErrAlreadyClosed, got %v", err)
	}
}

func TestClose(t *testing.T) {
	tr := newTracker()
	is := tr.Open("q?", "", "", nil)
	if err := tr.Close(is.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.Get(is.ID)
	if got.State != feedback.Closed {
		t.Fatalf("state = %s", got.State)
	}
	if err := tr.Close(is.ID); !errors.Is(err, feedback.ErrAlreadyClosed) {
		t.Fatalf("double close: %v", err)
	}
	if err := tr.Close(42); !errors.Is(err, feedback.ErrUnknownIssue) {
		t.Fatalf("unknown close: %v", err)
	}
}

func TestExpertsRoster(t *testing.T) {
	tr := newTracker()
	if got := tr.Experts(); len(got) != 2 || got[0] != "alice" {
		t.Fatalf("experts = %v", got)
	}
	tr.AddExpert("carol")
	is := tr.Open("q?", "", "", nil)
	if err := tr.Resolve(is.ID, "carol", feedback.Contribution{MetricName: "m", Description: "d"}); err != nil {
		t.Fatalf("added expert cannot resolve: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := newTracker()
	tr.Open("q1?", "r1", "sum(a)", []string{"a"})
	is := tr.Open("q2?", "r2", "", nil)
	if err := tr.Resolve(is.ID, "bob", feedback.Contribution{MetricName: "m", Description: "d"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := feedback.Load(&buf, fixedClock)
	if err != nil {
		t.Fatal(err)
	}
	all := tr2.List(-1)
	if len(all) != 2 || all[1].State != feedback.Resolved || all[1].Expert != "bob" {
		t.Fatalf("loaded issues = %+v", all)
	}
	// IDs continue after load.
	if next := tr2.Open("q3?", "", "", nil); next.ID != 3 {
		t.Fatalf("next id = %d", next.ID)
	}
	// Roster survives.
	if err := tr2.Resolve(1, "alice", feedback.Contribution{MetricName: "x", Description: "d"}); err != nil {
		t.Fatalf("roster lost: %v", err)
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := feedback.Load(strings.NewReader("{"), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestStateString(t *testing.T) {
	if feedback.Open.String() != "open" || feedback.Resolved.String() != "resolved" || feedback.Closed.String() != "closed" {
		t.Error("state strings wrong")
	}
}

// TestWireCopilotLoop exercises the full §3.4 loop: unanswerable question →
// issue → expert contribution → answerable question. It builds its own
// catalog because the contribution mutates it.
func TestWireCopilotLoop(t *testing.T) {
	cat := catalog.Generate()
	db := tsdb.New()
	cfg := fivegsim.DefaultConfig()
	cfg.Duration = 10 * time.Minute
	if _, err := fivegsim.Populate(db, cat, cfg); err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4")})
	if err != nil {
		t.Fatal(err)
	}
	tr := feedback.NewTracker([]string{"alice"}, fixedClock)
	feedback.WireCopilot(tr, cp)
	ctx := context.Background()

	const q = "What is the current registration storm indicator?"
	before, err := cp.Ask(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if before.ExecErr == nil && len(before.Metrics) > 0 && before.Metrics[0].Known {
		t.Fatalf("jargon question unexpectedly grounded before feedback: %+v", before.Metrics)
	}

	issue := feedback.OpenFromAnswer(tr, before)
	if issue.Question != q || len(issue.Context) == 0 {
		t.Fatalf("issue payload incomplete: %+v", issue)
	}
	err = tr.Resolve(issue.ID, "alice", feedback.Contribution{
		MetricName:  "amfcc_initial_registration_attempt",
		Description: "The registration storm indicator is the fleet-wide total of initial registration attempts.",
	})
	if err != nil {
		t.Fatal(err)
	}

	after, err := cp.Ask(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.ExecErr != nil || len(after.Metrics) == 0 || !after.Metrics[0].Known {
		t.Fatalf("question still ungrounded after contribution: %+v (err %v)", after.Metrics, after.ExecErr)
	}
	if after.Metrics[0].Name != "amfcc_initial_registration_attempt" {
		t.Errorf("grounded to %s", after.Metrics[0].Name)
	}
}

// TestWireCopilotFunctionContribution covers the bespoke-function path.
func TestWireCopilotFunctionContribution(t *testing.T) {
	cat := catalog.Generate()
	db := tsdb.New()
	cfg := fivegsim.DefaultConfig()
	cfg.Duration = 5 * time.Minute
	if _, err := fivegsim.Populate(db, cat, cfg); err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4")})
	if err != nil {
		t.Fatal(err)
	}
	tr := feedback.NewTracker([]string{"alice"}, fixedClock)
	feedback.WireCopilot(tr, cp)
	is := tr.Open("how to compute the golden ratio of attempts?", "", "", nil)
	nFuncs := len(cat.Functions)
	err = tr.Resolve(is.ID, "alice", feedback.Contribution{
		MetricName:       "amfcc_initial_registration_attempt",
		Description:      "golden ratio of attempts",
		FunctionName:     "golden_ratio",
		FunctionTemplate: "sum(%s) * 1.618",
		FunctionArity:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Functions) != nFuncs+1 {
		t.Fatal("function not added to the catalog")
	}
	f, ok := cat.LookupFunction("golden_ratio")
	if !ok || f.Author != "alice" {
		t.Fatalf("function lookup = %+v ok=%v", f, ok)
	}
}
