// Package feedback implements the expert feedback mechanism of §3.4: the
// raised-hand button opens a repository-style issue carrying the question,
// context and response; a pre-identified expert resolves it by
// contributing documentation (or a bespoke function) to the domain-specific
// database, attributed to the expert; the contribution is re-indexed so
// the system improves with usage.
package feedback

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// State is the lifecycle of an issue.
type State int

// Issue states.
const (
	Open State = iota
	Resolved
	Closed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case Resolved:
		return "resolved"
	case Closed:
		return "closed"
	}
	return "unknown"
}

// Contribution is the expert's resolution payload: documentation for a
// metric (and optionally a bespoke function recipe).
type Contribution struct {
	// MetricName is the metric the documentation describes.
	MetricName string `json:"metric_name"`
	// Description is the expert-written documentation text.
	Description string `json:"description"`
	// FunctionName/FunctionTemplate optionally contribute a bespoke
	// function ("" for none).
	FunctionName     string `json:"function_name,omitempty"`
	FunctionTemplate string `json:"function_template,omitempty"`
	FunctionArity    int    `json:"function_arity,omitempty"`
}

// Issue is one expert-assistance request, mirroring a repository issue.
type Issue struct {
	ID       int       `json:"id"`
	Question string    `json:"question"`
	Context  []string  `json:"context"`
	Response string    `json:"response"`
	Query    string    `json:"query"`
	State    State     `json:"state"`
	OpenedAt time.Time `json:"opened_at"`
	// TraceID links the issue to the captured request trace of the answer
	// it was filed against (resolvable at /debug/traces/{id} while
	// retained; empty when the answer was untraced).
	TraceID string `json:"trace_id,omitempty"`
	// Expert and Resolution record the attributed contribution (§3.4:
	// attribution "ensures that experts receive recognition ... and
	// creates accountability").
	Expert     string        `json:"expert,omitempty"`
	ResolvedAt time.Time     `json:"resolved_at,omitempty"`
	Resolution *Contribution `json:"resolution,omitempty"`
}

// Applier receives resolved contributions (the domain-specific database
// and the retriever index implement this wiring in package core callers).
type Applier func(Contribution, string) error

// Tracker is the issue store. It is safe for concurrent use.
type Tracker struct {
	mu           sync.Mutex
	nextID       int
	issues       map[int]*Issue
	experts      map[string]bool
	clock        func() time.Time
	appliers     []Applier
	proposals    map[int]*Proposal
	nextProposal int
}

// NewTracker returns a tracker with the given pre-identified experts. A
// nil clock uses time.Now.
func NewTracker(experts []string, clock func() time.Time) *Tracker {
	if clock == nil {
		clock = time.Now
	}
	t := &Tracker{nextID: 1, issues: make(map[int]*Issue), experts: make(map[string]bool), clock: clock}
	for _, e := range experts {
		t.experts[e] = true
	}
	return t
}

// OnResolve registers a callback invoked with every applied contribution.
func (t *Tracker) OnResolve(fn Applier) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appliers = append(t.appliers, fn)
}

// Experts returns the sorted expert roster.
func (t *Tracker) Experts() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.experts))
	for e := range t.experts {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// AddExpert expands the expert pool (the paper's future-work lever).
func (t *Tracker) AddExpert(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.experts[name] = true
}

// Open files a new issue from a copilot interaction.
func (t *Tracker) Open(question, response, query string, context []string) *Issue {
	t.mu.Lock()
	defer t.mu.Unlock()
	is := &Issue{
		ID: t.nextID, Question: question, Response: response, Query: query,
		Context: append([]string(nil), context...), State: Open, OpenedAt: t.clock(),
	}
	t.nextID++
	t.issues[is.ID] = is
	return is
}

// SetTraceID links an issue to the captured request trace of the answer
// it was filed against.
func (t *Tracker) SetTraceID(id int, traceID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if is, ok := t.issues[id]; ok {
		is.TraceID = traceID
	}
}

// Get returns the issue with the given id.
func (t *Tracker) Get(id int) (*Issue, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	is, ok := t.issues[id]
	return is, ok
}

// List returns issues in the given state (or all states when state < 0),
// ordered by id.
func (t *Tracker) List(state State) []*Issue {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Issue, 0, len(t.issues))
	for _, is := range t.issues {
		if state < 0 || is.State == state {
			out = append(out, is)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Errors returned by Resolve.
var (
	ErrUnknownIssue  = errors.New("feedback: unknown issue")
	ErrNotExpert     = errors.New("feedback: resolver is not a pre-identified expert")
	ErrAlreadyClosed = errors.New("feedback: issue is not open")
)

// Resolve applies an expert contribution to an open issue. Only
// pre-identified experts may resolve (§3.4); the contribution is handed to
// every registered applier and attributed to the expert.
func (t *Tracker) Resolve(id int, expert string, c Contribution) error {
	t.mu.Lock()
	is, ok := t.issues[id]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownIssue, id)
	}
	if !t.experts[expert] {
		t.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotExpert, expert)
	}
	if is.State != Open {
		t.mu.Unlock()
		return fmt.Errorf("%w: %d is %s", ErrAlreadyClosed, id, is.State)
	}
	if c.MetricName == "" || c.Description == "" {
		t.mu.Unlock()
		return errors.New("feedback: contribution requires a metric name and description")
	}
	is.State = Resolved
	is.Expert = expert
	is.ResolvedAt = t.clock()
	cc := c
	is.Resolution = &cc
	appliers := append([]Applier(nil), t.appliers...)
	t.mu.Unlock()

	for _, fn := range appliers {
		if err := fn(c, expert); err != nil {
			return fmt.Errorf("feedback: applying contribution: %w", err)
		}
	}
	return nil
}

// Close closes an open issue without a contribution.
func (t *Tracker) Close(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	is, ok := t.issues[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownIssue, id)
	}
	if is.State != Open {
		return fmt.Errorf("%w: %d is %s", ErrAlreadyClosed, id, is.State)
	}
	is.State = Closed
	return nil
}

// trackerState is the JSON persistence form.
type trackerState struct {
	NextID       int         `json:"next_id"`
	Issues       []*Issue    `json:"issues"`
	Experts      []string    `json:"experts"`
	Proposals    []*Proposal `json:"proposals,omitempty"`
	NextProposal int         `json:"next_proposal,omitempty"`
}

// Save serialises the tracker to JSON.
func (t *Tracker) Save(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := trackerState{NextID: t.nextID, NextProposal: t.nextProposal}
	for _, is := range t.issues {
		st.Issues = append(st.Issues, is)
	}
	for _, p := range t.proposals {
		st.Proposals = append(st.Proposals, p)
	}
	sort.Slice(st.Proposals, func(i, j int) bool { return st.Proposals[i].ID < st.Proposals[j].ID })
	sort.Slice(st.Issues, func(i, j int) bool { return st.Issues[i].ID < st.Issues[j].ID })
	for e := range t.experts {
		st.Experts = append(st.Experts, e)
	}
	sort.Strings(st.Experts)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// Load restores a tracker saved with Save.
func Load(r io.Reader, clock func() time.Time) (*Tracker, error) {
	var st trackerState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("feedback: corrupt tracker state: %w", err)
	}
	t := NewTracker(st.Experts, clock)
	t.nextID = st.NextID
	t.nextProposal = st.NextProposal
	for _, is := range st.Issues {
		t.issues[is.ID] = is
	}
	if len(st.Proposals) > 0 {
		t.proposals = make(map[int]*Proposal, len(st.Proposals))
		for _, p := range st.Proposals {
			t.proposals[p.ID] = p
		}
	}
	if t.nextID < 1 {
		t.nextID = 1
	}
	return t, nil
}
