package feedback

import "dio/internal/obs"

// Counts returns how many issues are in each lifecycle state.
func (t *Tracker) Counts() (open, resolved, closed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, is := range t.issues {
		switch is.State {
		case Open:
			open++
		case Resolved:
			resolved++
		case Closed:
			closed++
		}
	}
	return open, resolved, closed
}

// Instrument registers the tracker's self-metrics on reg: issue gauges per
// state and the community-proposal count, evaluated at gather time so they
// always reflect the live tracker.
func (t *Tracker) Instrument(reg *obs.Registry) {
	issues := reg.GaugeVec("dio_feedback_issues",
		"Expert feedback issues by lifecycle state.", "", "state")
	issues.Func(func() float64 { open, _, _ := t.Counts(); return float64(open) }, "open")
	issues.Func(func() float64 { _, resolved, _ := t.Counts(); return float64(resolved) }, "resolved")
	issues.Func(func() float64 { _, _, closed := t.Counts(); return float64(closed) }, "closed")
	reg.GaugeFunc("dio_feedback_proposals",
		"Community contribution proposals recorded (all issues).", "",
		func() float64 { return float64(len(t.Proposals(-1))) })
}
