package ingest

import "os"

// SetFsyncHook swaps the fsync implementation so tests can inject disk
// failures; it returns a restore function.
func SetFsyncHook(fn func(*os.File) error) (restore func()) {
	prev := fsyncFile
	fsyncFile = fn
	return func() { fsyncFile = prev }
}

// Internal identifiers re-exported for white-box tests.
var (
	SegmentNameForTest    = segmentName
	CheckpointNameForTest = checkpointName
)

const WALMagicForTest = walMagic
