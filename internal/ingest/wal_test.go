package ingest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dio/internal/tsdb"
)

type replayed struct {
	ls tsdb.Labels
	t  int64
	v  float64
}

func collectReplay(t *testing.T, dir string, fromSeg int) ([]replayed, ReplayStats) {
	t.Helper()
	var got []replayed
	st, err := ReplayWAL(dir, fromSeg, func(ls tsdb.Labels, ts int64, v float64) error {
		got = append(got, replayed{ls, ts, v})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func TestWALLogAndReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := mkSeries("a", nil, tsdb.Sample{T: 1000, V: 1}, tsdb.Sample{T: 2000, V: 2})
	b := mkSeries("b", map[string]string{"job": "x"}, tsdb.Sample{T: 1500, V: -1})
	mark, err := w.Log([]TimeSeries{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(mark); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Log([]TimeSeries{mkSeries("a", nil, tsdb.Sample{T: 3000, V: 3})}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, st := collectReplay(t, dir, 0)
	want := []replayed{
		{a.Labels, 1000, 1}, {a.Labels, 2000, 2},
		{b.Labels, 1500, -1},
		{a.Labels, 3000, 3},
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].ls.Equal(want[i].ls) || got[i].t != want[i].t || got[i].v != want[i].v {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if st.Samples != 4 || st.TailTruncated {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWALSegmentsSelfContained: after rotation each segment re-logs series
// labels, so replay can start at any segment boundary.
func TestWALSegmentsSelfContained(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := mkSeries("m", map[string]string{"instance": "i1"}, tsdb.Sample{T: 1, V: 1})
	if _, err := w.Log([]TimeSeries{ls}); err != nil {
		t.Fatal(err)
	}
	seg2, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Log([]TimeSeries{mkSeries("m", map[string]string{"instance": "i1"}, tsdb.Sample{T: 2, V: 2})}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay only from the post-rotation segment: the sample must still
	// resolve its labels.
	got, _ := collectReplay(t, dir, seg2)
	if len(got) != 1 || got[0].t != 2 || !got[0].ls.Equal(ls.Labels) {
		t.Fatalf("replay from segment %d = %+v", seg2, got)
	}
}

func TestWALRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Log([]TimeSeries{mkSeries("m", nil, tsdb.Sample{T: 1, V: 1})}); err != nil {
		t.Fatal(err)
	}
	seg := w.CurrentSegment()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(seg))
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-write leaves a partial record at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, st := collectReplay(t, dir, 0)
	if len(got) != 1 || got[0].t != 1 {
		t.Fatalf("replay after torn tail = %+v", got)
	}
	if !st.TailTruncated || st.TailBytesDropped != 6 {
		t.Fatalf("stats = %+v", st)
	}
	// The repair physically truncated the file back to the intact prefix.
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != len(intact) {
		t.Fatalf("repaired segment is %dB, want %dB", len(repaired), len(intact))
	}
}

func TestWALCorruptEarlierSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Log([]TimeSeries{mkSeries("m", nil, tsdb.Sample{T: 1, V: 1})}); err != nil {
		t.Fatal(err)
	}
	seg1 := w.CurrentSegment()
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Log([]TimeSeries{mkSeries("m", nil, tsdb.Sample{T: 2, V: 2})}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first (non-final) segment: repair must NOT
	// kick in, because acknowledged data would silently vanish.
	path := filepath.Join(dir, segmentName(seg1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rerr := ReplayWAL(dir, 0, func(tsdb.Labels, int64, float64) error { return nil })
	if !errors.Is(rerr, ErrWALCorrupt) {
		t.Fatalf("replay of corrupt middle segment: %v", rerr)
	}
}

func TestWALOpenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first := w.CurrentSegment()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.CurrentSegment() <= first {
		t.Fatalf("reopen reused segment %d (first was %d)", w2.CurrentSegment(), first)
	}
}
