package ingest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dio/internal/obs"
	"dio/internal/tsdb"
)

// scrapeBatches builds a deterministic realistic workload (integer-valued
// walks, 15s interval) as a sequence of write batches, and the flat
// reference TSDB they should produce.
func scrapeBatches(seriesN, batchN, perBatch int) ([][]TimeSeries, *tsdb.DB) {
	rng := rand.New(rand.NewSource(42))
	labels := make([]tsdb.Labels, seriesN)
	vals := make([]float64, seriesN)
	for s := range labels {
		labels[s] = tsdb.FromMap(map[string]string{
			"__name__": "dl_throughput_bytes", "ue": fmt.Sprintf("ue%02d", s),
		})
		vals[s] = float64(1000 + s)
	}
	ref := tsdb.New()
	var batches [][]TimeSeries
	t0 := int64(1_700_000_000_000)
	for b := 0; b < batchN; b++ {
		batch := make([]TimeSeries, 0, seriesN)
		for s := range labels {
			ts := TimeSeries{Labels: labels[s]}
			for i := 0; i < perBatch; i++ {
				vals[s] += float64(rng.Intn(64))
				at := t0 + int64(b*perBatch+i)*15000
				ts.Samples = append(ts.Samples, tsdb.Sample{T: at, V: vals[s]})
				if err := ref.Append(labels[s], at, vals[s]); err != nil {
					panic(err)
				}
			}
			batch = append(batch, ts)
		}
		batches = append(batches, batch)
	}
	return batches, ref
}

// identicalStores fails unless both stores answer queries byte-identically.
func identicalStores(t *testing.T, got, want tsdb.Storage) {
	t.Helper()
	if !reflect.DeepEqual(got.AllSeries(), want.AllSeries()) {
		t.Fatalf("recovered store differs: %d/%d series, %d/%d samples",
			got.NumSeries(), want.NumSeries(), got.NumSamples(), want.NumSamples())
	}
}

func TestStoreAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	batches, ref := scrapeBatches(4, 6, 10)
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		as, err := st.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		if as.OutOfOrder != 0 || as.Duplicate != 0 {
			t.Fatalf("unexpected drops: %+v", as)
		}
	}
	identicalStores(t, st.DB(), ref)

	// Simulated crash: no Close, no checkpoint — recovery must rebuild the
	// exact acknowledged state from the WAL alone.
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	identicalStores(t, re.DB(), ref)
	if rs := re.ReplayStats(); rs.Samples != ref.NumSamples() {
		t.Fatalf("replayed %d samples, want %d", rs.Samples, ref.NumSamples())
	}
	st.Close()
}

func TestStoreRecoverAcrossSegmentsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations mid-run.
	batches, ref := scrapeBatches(3, 8, 12)
	st, err := OpenStore(dir, StoreOptions{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
		if i == len(batches)/2 {
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash (no Close). Recovery = checkpoint + replay of later segments.
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	identicalStores(t, re.DB(), ref)
	// The checkpoint's replay starts mid-log, so fewer samples than total.
	if rs := re.ReplayStats(); rs.Samples >= ref.NumSamples() || rs.Samples == 0 {
		t.Fatalf("replayed %d samples, want a strict mid-log subset of %d", rs.Samples, ref.NumSamples())
	}
	st.Close()
}

func TestStoreCheckpointGarbageCollects(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	batches, _ := scrapeBatches(2, 6, 10)
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	cur := st.wal.CurrentSegment()
	for _, s := range segs {
		if s < cur {
			t.Fatalf("segment %d survived checkpointing (current %d)", s, cur)
		}
	}
	cps, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 {
		t.Fatalf("checkpoints on disk: %v, want exactly one", cps)
	}
	st.Close()
}

func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	batches, ref := scrapeBatches(2, 3, 8)
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	seg := st.wal.CurrentSegment()
	st.Close()
	// A crash tore the last record in half.
	f, err := os.OpenFile(filepath.Join(dir, "wal", segmentName(seg)), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rs := re.ReplayStats(); !rs.TailTruncated {
		t.Fatalf("torn tail not repaired: %+v", rs)
	}
	identicalStores(t, re.DB(), ref)
}

func TestStoreFsyncFailureRefusesAck(t *testing.T) {
	dir := t.TempDir()
	batches, _ := scrapeBatches(2, 2, 6)
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(batches[0]); err != nil {
		t.Fatal(err)
	}
	acked := tsdb.New()
	for _, ts := range batches[0] {
		for _, s := range ts.Samples {
			if err := acked.Append(ts.Labels, s.T, s.V); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The disk starts failing fsyncs: the append must report failure (the
	// client cannot assume durability) and the WAL must stay failed rather
	// than silently acknowledge later writes.
	restore := SetFsyncHook(func(*os.File) error { return errors.New("injected fsync failure") })
	if _, err := st.Append(batches[1]); err == nil {
		t.Fatal("append acknowledged despite fsync failure")
	}
	if _, err := st.Append(batches[1]); err == nil {
		t.Fatal("append acknowledged on a failed WAL")
	}
	restore()
	st.Close()

	// Recovery must include every acknowledged sample. The unacknowledged
	// batch may or may not be present (it reached the OS before the sync
	// failed) — the guarantee is no *acknowledged* loss.
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, want := range acked.AllSeries() {
		rs := re.DB().SelectRange([]*tsdb.Matcher{tsdb.NameMatcher(want.Labels.Name())}, want.Samples[0].T-1, want.Samples[len(want.Samples)-1].T)
		found := false
		for _, got := range rs {
			if got.Labels.Equal(want.Labels) {
				found = true
				if len(got.Samples) < len(want.Samples) {
					t.Fatalf("series %s lost acknowledged samples: %d < %d", want.Labels, len(got.Samples), len(want.Samples))
				}
				for i, s := range want.Samples {
					if got.Samples[i] != s {
						t.Fatalf("series %s sample %d = %+v, want %+v", want.Labels, i, got.Samples[i], s)
					}
				}
			}
		}
		if !found {
			t.Fatalf("acknowledged series %s missing after recovery", want.Labels)
		}
	}
}

func TestStoreTruncatePersists(t *testing.T) {
	dir := t.TempDir()
	batches, ref := scrapeBatches(2, 4, 10)
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	minT, maxT, _ := ref.TimeRange()
	cut := (minT + maxT) / 2
	dropped, err := st.Truncate(cut)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("nothing truncated")
	}
	ref.Truncate(cut)
	identicalStores(t, st.DB(), ref)
	st.Close()

	// A restart must not resurrect truncated samples from the WAL.
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	identicalStores(t, re.DB(), ref)
}

func TestStoreDropPolicyAndMetrics(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	st.Instrument(reg)
	ls := tsdb.FromMap(map[string]string{"__name__": "m"})
	as, err := st.Append([]TimeSeries{{Labels: ls, Samples: []tsdb.Sample{{T: 1000, V: 1}, {T: 2000, V: 2}}}})
	if err != nil || as.Appended != 2 {
		t.Fatalf("append = %+v, %v", as, err)
	}
	as, err = st.Append([]TimeSeries{{Labels: ls, Samples: []tsdb.Sample{{T: 500, V: 9}, {T: 2000, V: 99}, {T: 3000, V: 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	if as.Appended != 1 || as.OutOfOrder != 1 || as.Duplicate != 1 {
		t.Fatalf("drop accounting = %+v", as)
	}
	var ooo, dup float64
	for _, fam := range reg.Gather() {
		switch fam.Name {
		case "dio_ingest_out_of_order_total":
			ooo = fam.Samples[0].Value
		case "dio_ingest_duplicate_total":
			dup = fam.Samples[0].Value
		}
	}
	if ooo != 1 || dup != 1 {
		t.Fatalf("metrics ooo=%v dup=%v, want 1/1", ooo, dup)
	}
}

func TestStoreGroupCommitWithInterval(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{FsyncInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Each goroutine writes its own series so the concurrent batches are
	// order-independent; the reference store gets the same data serially.
	ref := tsdb.New()
	var batches [][]TimeSeries
	for g := 0; g < 8; g++ {
		ls := tsdb.FromMap(map[string]string{"__name__": "m", "writer": fmt.Sprintf("w%d", g)})
		ts := TimeSeries{Labels: ls}
		for i := 0; i < 20; i++ {
			s := tsdb.Sample{T: int64(i) * 1000, V: float64(g*100 + i)}
			ts.Samples = append(ts.Samples, s)
			if err := ref.Append(ls, s.T, s.V); err != nil {
				t.Fatal(err)
			}
		}
		batches = append(batches, []TimeSeries{ts})
	}
	done := make(chan error, len(batches))
	for _, b := range batches {
		go func(b []TimeSeries) {
			_, err := st.Append(b)
			done <- err
		}(b)
	}
	for range batches {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	identicalStores(t, st.DB(), ref)
	st.Close()
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	identicalStores(t, re.DB(), ref)
}
