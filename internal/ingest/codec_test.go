package ingest

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"dio/internal/tsdb"
)

func mkSeries(name string, extra map[string]string, samples ...tsdb.Sample) TimeSeries {
	m := map[string]string{"__name__": name}
	for k, v := range extra {
		m[k] = v
	}
	return TimeSeries{Labels: tsdb.FromMap(m), Samples: samples}
}

func sameSeries(t *testing.T, got, want []TimeSeries) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d series, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Labels.Equal(want[i].Labels) {
			t.Fatalf("series %d labels %s, want %s", i, got[i].Labels, want[i].Labels)
		}
		if len(got[i].Samples) != len(want[i].Samples) {
			t.Fatalf("series %d: %d samples, want %d", i, len(got[i].Samples), len(want[i].Samples))
		}
		for j, s := range want[i].Samples {
			g := got[i].Samples[j]
			if g.T != s.T || math.Float64bits(g.V) != math.Float64bits(s.V) {
				t.Fatalf("series %d sample %d = %+v, want %+v", i, j, g, s)
			}
		}
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	in := []TimeSeries{
		mkSeries("up", map[string]string{"job": "ue-sim", "instance": "a"},
			tsdb.Sample{T: -5000, V: 1}, tsdb.Sample{T: 0, V: 0}, tsdb.Sample{T: 15000, V: 1}),
		// The binary codec must carry what JSON cannot.
		mkSeries("weird", nil,
			tsdb.Sample{T: 1, V: math.NaN()},
			tsdb.Sample{T: 2, V: math.Inf(1)},
			tsdb.Sample{T: 3, V: math.Inf(-1)},
			tsdb.Sample{T: 1 << 44, V: math.Copysign(0, -1)}),
		mkSeries("empty", nil),
	}
	out, err := DecodeBinary(EncodeBinary(in))
	if err != nil {
		t.Fatal(err)
	}
	sameSeries(t, out, in)
}

func TestBinaryCodecRejectsCorruption(t *testing.T) {
	raw := EncodeBinary([]TimeSeries{
		mkSeries("m", map[string]string{"x": "y"}, tsdb.Sample{T: 1000, V: 2}, tsdb.Sample{T: 2000, V: 3}),
	})
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeBinary(raw[:cut]); !errors.Is(err, ErrBadWritePayload) {
			t.Fatalf("truncation at %d accepted: %v", cut, err)
		}
	}
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x20
		if _, err := DecodeBinary(mut); !errors.Is(err, ErrBadWritePayload) {
			t.Fatalf("flipped byte %d accepted: %v", off, err)
		}
	}
}

func TestBinaryCodecRejectsBadSemantics(t *testing.T) {
	cases := map[string][]TimeSeries{
		"unsorted labels": {{
			Labels:  tsdb.Labels{{Name: "b", Value: "1"}, {Name: "__name__", Value: "m"}},
			Samples: []tsdb.Sample{{T: 1, V: 1}},
		}},
		"duplicate label": {{
			Labels:  tsdb.Labels{{Name: "__name__", Value: "m"}, {Name: "a", Value: "1"}, {Name: "a", Value: "2"}},
			Samples: []tsdb.Sample{{T: 1, V: 1}},
		}},
		"no metric name": {{
			Labels:  tsdb.Labels{{Name: "job", Value: "x"}},
			Samples: []tsdb.Sample{{T: 1, V: 1}},
		}},
		"unordered samples": {
			mkSeries("m", nil, tsdb.Sample{T: 2, V: 1}, tsdb.Sample{T: 1, V: 1}),
		},
		"duplicate timestamps": {
			mkSeries("m", nil, tsdb.Sample{T: 2, V: 1}, tsdb.Sample{T: 2, V: 2}),
		},
	}
	for name, in := range cases {
		if _, err := DecodeBinary(EncodeBinary(in)); !errors.Is(err, ErrBadWritePayload) {
			t.Errorf("%s: err = %v, want ErrBadWritePayload", name, err)
		}
	}
}

func TestJSONCodecRoundTrip(t *testing.T) {
	in := []TimeSeries{
		mkSeries("up", map[string]string{"job": "gnb"},
			tsdb.Sample{T: 1700000000000, V: 1}, tsdb.Sample{T: 1700000015000, V: 0}),
	}
	raw, err := EncodeJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sameSeries(t, out, in)

	if _, err := DecodeJSON(bytes.NewReader([]byte(`{"series":[{"labels":{},"samples":[[1,1]]}]}`))); !errors.Is(err, ErrBadWritePayload) {
		t.Errorf("labelless series accepted: %v", err)
	}
	if _, err := DecodeJSON(bytes.NewReader([]byte(`not json`))); !errors.Is(err, ErrBadWritePayload) {
		t.Errorf("garbage accepted: %v", err)
	}
}

func TestDecodeWriteRequestDispatch(t *testing.T) {
	in := []TimeSeries{mkSeries("m", nil, tsdb.Sample{T: 5, V: 6})}
	out, err := DecodeWriteRequest(bytes.NewReader(EncodeBinary(in)), ContentTypeBinary)
	if err != nil {
		t.Fatal(err)
	}
	sameSeries(t, out, in)
	raw, _ := EncodeJSON(in)
	out, err = DecodeWriteRequest(bytes.NewReader(raw), ContentTypeJSON)
	if err != nil {
		t.Fatal(err)
	}
	sameSeries(t, out, in)
	if _, err := DecodeWriteRequest(bytes.NewReader(raw), "text/plain"); !errors.Is(err, ErrBadWritePayload) {
		t.Fatalf("unknown content type accepted: %v", err)
	}
}
