// Package ingest is the durable streaming-ingest subsystem: a segmented
// CRC-checked write-ahead log with fsync batching, a Store that pairs the
// WAL with the in-memory chunked TSDB (crash-recovery replay, periodic
// checkpoint/truncation), and the remote-write wire codec + client the
// /api/v1/write endpoint speaks.
//
// The layering follows the client/codec/reader split of Prometheus-style
// remote-write implementations: codec.go defines the wire formats,
// client.go the pushing side, and httpapi owns the reading endpoint.
package ingest

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"dio/internal/tsdb"
)

// TimeSeries is one series of a write request: a label set plus samples
// in ascending time order.
type TimeSeries struct {
	Labels  tsdb.Labels
	Samples []tsdb.Sample
}

// Content types negotiated on POST /api/v1/write. The binary codec is the
// compact framed form the bench client uses; JSON is the debuggable
// fallback (curl-able, but unable to carry NaN/Inf values).
const (
	ContentTypeBinary = "application/x-dio-write"
	ContentTypeJSON   = "application/json"
)

// ErrBadWritePayload is wrapped by every decode failure: framing, CRC,
// limits, and semantic validation (nameless series, unordered samples).
var ErrBadWritePayload = errors.New("ingest: bad write payload")

func badPayloadf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadWritePayload, fmt.Sprintf(format, args...))
}

// Decode limits: a single write request may not explode into unbounded
// memory no matter what the bytes claim.
const (
	maxSeriesPerRequest  = 100_000
	maxLabelsPerSeries   = 64
	maxSamplesPerSeries  = 100_000
	maxLabelLength       = 4096
	maxSamplesPerRequest = 2_000_000
)

// Binary wire format ("application/x-dio-write"):
//
//	4B  magic "DWR1"
//	uvarint series count; per series:
//	  uvarint label count; per label: uvarint len + bytes (name, value)
//	  uvarint sample count; zigzag-varint t0; then per extra sample a
//	  zigzag-varint delta from the previous timestamp; values as 8B
//	  little-endian IEEE-754 bits each
//	4B  IEEE CRC-32 (big-endian) of everything after the magic
const binaryMagic = "DWR1"

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeBinary renders a write request in the binary wire format.
func EncodeBinary(series []TimeSeries) []byte {
	var b []byte
	b = append(b, binaryMagic...)
	b = binary.AppendUvarint(b, uint64(len(series)))
	for _, ts := range series {
		b = binary.AppendUvarint(b, uint64(len(ts.Labels)))
		for _, l := range ts.Labels {
			b = binary.AppendUvarint(b, uint64(len(l.Name)))
			b = append(b, l.Name...)
			b = binary.AppendUvarint(b, uint64(len(l.Value)))
			b = append(b, l.Value...)
		}
		b = binary.AppendUvarint(b, uint64(len(ts.Samples)))
		prevT := int64(0)
		for i, s := range ts.Samples {
			if i == 0 {
				b = binary.AppendUvarint(b, zigzag(s.T))
			} else {
				b = binary.AppendUvarint(b, zigzag(s.T-prevT))
			}
			prevT = s.T
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.V))
		}
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(b[len(binaryMagic):]))
	return append(b, sum[:]...)
}

// DecodeBinary parses and validates a binary write request.
func DecodeBinary(raw []byte) ([]TimeSeries, error) {
	if len(raw) < len(binaryMagic)+4 || string(raw[:len(binaryMagic)]) != binaryMagic {
		return nil, badPayloadf("bad magic")
	}
	payload := raw[len(binaryMagic) : len(raw)-4]
	want := binary.BigEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, badPayloadf("CRC mismatch (got %08x, want %08x)", got, want)
	}
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, badPayloadf("truncated varint at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	readString := func(max int) (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > uint64(max) {
			return "", badPayloadf("string of %d bytes exceeds the %d limit", n, max)
		}
		if uint64(len(payload)-pos) < n {
			return "", badPayloadf("truncated string at offset %d", pos)
		}
		s := string(payload[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	nSeries, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nSeries > maxSeriesPerRequest {
		return nil, badPayloadf("%d series exceeds the %d limit", nSeries, maxSeriesPerRequest)
	}
	out := make([]TimeSeries, 0, nSeries)
	totalSamples := uint64(0)
	for si := uint64(0); si < nSeries; si++ {
		nLabels, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if nLabels == 0 || nLabels > maxLabelsPerSeries {
			return nil, badPayloadf("series %d has %d labels", si, nLabels)
		}
		ls := make(tsdb.Labels, 0, nLabels)
		for li := uint64(0); li < nLabels; li++ {
			name, err := readString(maxLabelLength)
			if err != nil {
				return nil, err
			}
			value, err := readString(maxLabelLength)
			if err != nil {
				return nil, err
			}
			ls = append(ls, tsdb.Label{Name: name, Value: value})
		}
		nSamples, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if nSamples > maxSamplesPerSeries {
			return nil, badPayloadf("series %d has %d samples", si, nSamples)
		}
		if totalSamples += nSamples; totalSamples > maxSamplesPerRequest {
			return nil, badPayloadf("request exceeds %d total samples", maxSamplesPerRequest)
		}
		samples := make([]tsdb.Sample, 0, nSamples)
		prevT := int64(0)
		for i := uint64(0); i < nSamples; i++ {
			zz, err := readUvarint()
			if err != nil {
				return nil, err
			}
			t := unzigzag(zz)
			if i > 0 {
				t += prevT
			}
			if len(payload)-pos < 8 {
				return nil, badPayloadf("truncated value at offset %d", pos)
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
			pos += 8
			samples = append(samples, tsdb.Sample{T: t, V: v})
			prevT = t
		}
		ts := TimeSeries{Labels: ls, Samples: samples}
		if err := validateSeries(si, ts); err != nil {
			return nil, err
		}
		out = append(out, ts)
	}
	if pos != len(payload) {
		return nil, badPayloadf("%d trailing bytes", len(payload)-pos)
	}
	return out, nil
}

// validateSeries enforces the semantic rules shared by both codecs.
func validateSeries(idx uint64, ts TimeSeries) error {
	if !sort.SliceIsSorted(ts.Labels, func(i, j int) bool { return ts.Labels[i].Name < ts.Labels[j].Name }) {
		return badPayloadf("series %d labels are not sorted by name", idx)
	}
	for i := 1; i < len(ts.Labels); i++ {
		if ts.Labels[i].Name == ts.Labels[i-1].Name {
			return badPayloadf("series %d repeats label %q", idx, ts.Labels[i].Name)
		}
	}
	if ts.Labels.Name() == "" {
		return badPayloadf("series %d has no metric name", idx)
	}
	for i := 1; i < len(ts.Samples); i++ {
		if ts.Samples[i].T <= ts.Samples[i-1].T {
			return badPayloadf("series %d samples are not strictly time-ordered", idx)
		}
	}
	return nil
}

// jsonWriteRequest is the JSON wire shape:
//
//	{"series":[{"labels":{"__name__":"up","job":"x"},"samples":[[1700000000000,1],...]}]}
type jsonWriteRequest struct {
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Labels  map[string]string `json:"labels"`
	Samples [][2]float64      `json:"samples"`
}

// EncodeJSON renders a write request as JSON. Values that JSON cannot
// carry (NaN, ±Inf) make it fail; use the binary codec for those.
func EncodeJSON(series []TimeSeries) ([]byte, error) {
	req := jsonWriteRequest{Series: make([]jsonSeries, 0, len(series))}
	for _, ts := range series {
		js := jsonSeries{Labels: ts.Labels.Map(), Samples: make([][2]float64, 0, len(ts.Samples))}
		for _, s := range ts.Samples {
			js.Samples = append(js.Samples, [2]float64{float64(s.T), s.V})
		}
		req.Series = append(req.Series, js)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return nil, badPayloadf("json encode: %v", err)
	}
	return buf.Bytes(), nil
}

// DecodeJSON parses and validates a JSON write request.
func DecodeJSON(r io.Reader) ([]TimeSeries, error) {
	var req jsonWriteRequest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&req); err != nil {
		return nil, badPayloadf("json decode: %v", err)
	}
	if len(req.Series) > maxSeriesPerRequest {
		return nil, badPayloadf("%d series exceeds the %d limit", len(req.Series), maxSeriesPerRequest)
	}
	out := make([]TimeSeries, 0, len(req.Series))
	total := 0
	for si, js := range req.Series {
		if len(js.Labels) == 0 || len(js.Labels) > maxLabelsPerSeries {
			return nil, badPayloadf("series %d has %d labels", si, len(js.Labels))
		}
		if len(js.Samples) > maxSamplesPerSeries {
			return nil, badPayloadf("series %d has %d samples", si, len(js.Samples))
		}
		if total += len(js.Samples); total > maxSamplesPerRequest {
			return nil, badPayloadf("request exceeds %d total samples", maxSamplesPerRequest)
		}
		ts := TimeSeries{Labels: tsdb.FromMap(js.Labels), Samples: make([]tsdb.Sample, 0, len(js.Samples))}
		for _, s := range js.Samples {
			ts.Samples = append(ts.Samples, tsdb.Sample{T: int64(s[0]), V: s[1]})
		}
		if err := validateSeries(uint64(si), ts); err != nil {
			return nil, err
		}
		out = append(out, ts)
	}
	return out, nil
}

// DecodeWriteRequest dispatches on the request content type.
func DecodeWriteRequest(r io.Reader, contentType string) ([]TimeSeries, error) {
	switch contentType {
	case ContentTypeBinary:
		raw, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		return DecodeBinary(raw)
	case ContentTypeJSON, "":
		return DecodeJSON(r)
	default:
		return nil, badPayloadf("unsupported content type %q", contentType)
	}
}
