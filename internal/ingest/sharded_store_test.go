package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dio/internal/tsdb"
)

// TestShardedStoreAppendAndRecover: a 4-shard store must acknowledge the
// same batches as the flat reference, route them across shards, and — after
// a simulated crash (no Close, no checkpoint) — rebuild the exact
// acknowledged state from the single fan-in WAL alone.
func TestShardedStoreAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	batches, ref := scrapeBatches(16, 6, 10)
	st, err := OpenStore(dir, StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", st.Shards())
	}
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	identicalStores(t, st.DB(), ref)
	sh := st.DB().(*tsdb.ShardedDB)
	populated := 0
	for i := 0; i < sh.NumShards(); i++ {
		if sh.Shard(i).NumSeries() > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("only %d shards populated; routing degenerate", populated)
	}

	re, err := OpenStore(dir, StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	identicalStores(t, re.DB(), ref)
	if rs := re.ReplayStats(); rs.Samples != ref.NumSamples() {
		t.Fatalf("replayed %d samples, want %d", rs.Samples, ref.NumSamples())
	}
	st.Close()
}

// TestShardedStoreCheckpointSet: checkpointing a 4-shard store writes one
// file per shard, garbage-collects older sets, and recovery from the set
// (plus post-checkpoint WAL tail) is exact.
func TestShardedStoreCheckpointSet(t *testing.T) {
	dir := t.TempDir()
	batches, ref := scrapeBatches(12, 4, 8)
	st, err := OpenStore(dir, StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:2] {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	names := checkpointFiles(t, dir)
	if len(names) != 4 {
		t.Fatalf("checkpoint wrote %d files, want 4: %v", len(names), names)
	}
	for _, n := range names {
		if !strings.Contains(n, "-of-004") {
			t.Fatalf("unexpected checkpoint file name %q", n)
		}
	}
	// Tail after the checkpoint: recovered via WAL replay on top of the set.
	for _, b := range batches[2:] {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	re, err := OpenStore(dir, StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	identicalStores(t, re.DB(), ref)
	st.Close()
}

// TestShardedStoreIncompleteSetFallsBack: a crash between the renames of
// a per-shard checkpoint set leaves a partial set on disk — but the WAL
// segments it would have covered are still present, because segment GC
// runs only after the last rename. Recovery must ignore the partial set
// (never even open its files) and rebuild the exact acknowledged state
// from the previous complete checkpoint plus WAL replay.
func TestShardedStoreIncompleteSetFallsBack(t *testing.T) {
	dir := t.TempDir()
	batches, ref := scrapeBatches(12, 4, 8)
	st, err := OpenStore(dir, StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:2] {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[2:] {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Simulated mid-checkpoint crash: two files of a newer 4-shard set
	// made it to disk before the process died. Their content is garbage —
	// if recovery ever opens them, it fails loudly instead of silently
	// regressing to an older state.
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(filepath.Join(dir, shardCheckpointName(999, i, 4)), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cps, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range cps {
		if cp.seg == 999 {
			t.Fatalf("partial set listed as complete: %+v", cps)
		}
	}

	re, err := OpenStore(dir, StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	identicalStores(t, re.DB(), ref)
	if rs := re.ReplayStats(); rs.Samples == 0 {
		t.Fatal("expected WAL replay on top of the older complete checkpoint")
	}
}

// TestShardedStoreReshardOnReopen: a store written at one shard count must
// reopen cleanly at another (including back to unsharded), preserving the
// exact acknowledged state.
func TestShardedStoreReshardOnReopen(t *testing.T) {
	dir := t.TempDir()
	batches, ref := scrapeBatches(12, 3, 8)
	st, err := OpenStore(dir, StoreOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	for _, shards := range []int{4, 1} {
		re, err := OpenStore(dir, StoreOptions{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		identicalStores(t, re.DB(), ref)
		if got := re.Shards(); got != shards {
			t.Fatalf("reopened with %d shards, want %d", got, shards)
		}
		// Persist under the new layout so the next iteration starts from
		// this shard count's checkpoint format.
		if err := re.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		re.Close()
	}
}

// checkpointFiles lists checkpoint-prefixed non-temp files in dir, sorted.
func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if _, ok := parseCheckpointName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	return names
}
