package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dio/internal/tsdb"
)

// The WAL is an append-only sequence of segment files:
//
//	wal-00000001.log, wal-00000002.log, ...
//
// Each segment starts with an 8-byte magic and holds length+CRC framed
// records:
//
//	8B  magic "DIOWAL1\n"
//	records: [4B LE payload len][4B LE IEEE CRC-32 of payload][payload]
//
// Record payloads (first byte is the type):
//
//	0x01 series: uvarint seriesRef, uvarint label count,
//	     per label uvarint len + bytes (name, value)
//	0x02 samples: uvarint count, then per sample
//	     uvarint seriesRef, zigzag-varint delta from the previous
//	     timestamp in the record (first is absolute), 8B LE value bits
//
// Series refs are process-lifetime identifiers. Every segment re-logs a
// series' labels before its first sample record in that segment, so a
// segment sequence is replayable from any segment boundary — which is
// what lets checkpoints delete older segments entirely.
const (
	walMagic     = "DIOWAL1\n"
	recSeries    = 0x01
	recSamples   = 0x02
	walSegPrefix = "wal-"
	walSegSuffix = ".log"
)

// ErrWALCorrupt marks corruption in a non-final WAL segment — damage that
// repair-by-truncation must not paper over.
var ErrWALCorrupt = errors.New("ingest: corrupt WAL")

// ErrWALClosed is returned by appends after Close.
var ErrWALClosed = errors.New("ingest: WAL is closed")

// fsyncFile is swapped by tests to inject fsync failures.
var fsyncFile = func(f *os.File) error { return f.Sync() }

// WALOptions tune the write-ahead log.
type WALOptions struct {
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size. Default 16 MiB.
	SegmentBytes int64
	// FsyncInterval batches fsyncs: appends are acknowledged once the
	// periodic flusher syncs past them. 0 syncs on every append batch
	// (group-committing whatever accumulated meanwhile).
	FsyncInterval time.Duration
	// OnFsync, when set, observes each fsync's duration in seconds.
	OnFsync func(seconds float64)
	// OnWrite, when set, observes bytes written per record batch.
	OnWrite func(bytes int)
}

// WAL is the segmented write-ahead log. It is safe for concurrent use.
type WAL struct {
	dir  string
	opts WALOptions

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	bw   *bufio.Writer
	seg      int
	segBytes int64
	// refs maps series fingerprints to their process-lifetime refs;
	// loggedInSeg tracks which refs already have a series record in the
	// current segment.
	refs        map[string]uint64
	loggedInSeg map[uint64]bool
	nextRef     uint64

	written uint64 // append batches written to the OS
	synced  uint64 // append batches covered by an fsync
	err     error  // sticky write/fsync error
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// segmentName formats the file name of segment idx.
func segmentName(idx int) string {
	return fmt.Sprintf("%s%08d%s", walSegPrefix, idx, walSegSuffix)
}

// parseSegmentName returns the index of a segment file name.
func parseSegmentName(name string) (int, bool) {
	if !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, walSegPrefix), walSegSuffix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment indexes present in dir, sorted.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []int
	for _, e := range ents {
		if n, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// OpenWAL opens the log in dir, always starting a fresh segment after any
// existing ones (never appending to a file a crash may have truncated
// mid-record).
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 16 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	w := &WAL{
		dir:         dir,
		opts:        opts,
		refs:        make(map[string]uint64),
		loggedInSeg: make(map[uint64]bool),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	if err := w.openSegmentLocked(next); err != nil {
		return nil, err
	}
	if opts.FsyncInterval > 0 {
		go w.flushLoop()
	} else {
		close(w.done)
	}
	return w, nil
}

// openSegmentLocked starts segment idx. Callers hold mu (or own the WAL
// exclusively during open).
func (w *WAL) openSegmentLocked(idx int) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(idx)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<20)
	w.seg = idx
	w.segBytes = int64(len(walMagic))
	w.loggedInSeg = make(map[uint64]bool)
	return nil
}

// CurrentSegment returns the index of the segment appends go to.
func (w *WAL) CurrentSegment() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg
}

// flushLoop is the fsync batcher: every FsyncInterval it syncs whatever
// has been written and wakes the appenders waiting on durability.
func (w *WAL) flushLoop() {
	defer close(w.done)
	tick := time.NewTicker(w.opts.FsyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.mu.Lock()
			if !w.closed && w.written > w.synced {
				w.flushSyncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// flushSyncLocked flushes the buffer and fsyncs the segment, advancing
// the durability watermark and waking waiters. Callers hold mu.
func (w *WAL) flushSyncLocked() {
	if w.err == nil {
		if err := w.bw.Flush(); err != nil {
			w.err = err
		}
	}
	if w.err == nil {
		t0 := time.Now()
		if err := fsyncFile(w.f); err != nil {
			w.err = err
		} else if w.opts.OnFsync != nil {
			w.opts.OnFsync(time.Since(t0).Seconds())
		}
	}
	w.synced = w.written
	w.cond.Broadcast()
}

// writeRecordLocked frames and writes one record payload.
func (w *WAL) writeRecordLocked(payload []byte) {
	if w.err != nil {
		return
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = err
		return
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.err = err
		return
	}
	w.segBytes += int64(len(hdr) + len(payload))
	if w.opts.OnWrite != nil {
		w.opts.OnWrite(len(hdr) + len(payload))
	}
}

// refLocked resolves (allocating if needed) the ref for a series and
// guarantees its series record exists in the current segment.
func (w *WAL) refLocked(ls tsdb.Labels) uint64 {
	key := ls.Key()
	ref, ok := w.refs[key]
	if !ok {
		w.nextRef++
		ref = w.nextRef
		w.refs[key] = ref
	}
	if !w.loggedInSeg[ref] {
		payload := []byte{recSeries}
		payload = binary.AppendUvarint(payload, ref)
		payload = binary.AppendUvarint(payload, uint64(len(ls)))
		for _, l := range ls {
			payload = binary.AppendUvarint(payload, uint64(len(l.Name)))
			payload = append(payload, l.Name...)
			payload = binary.AppendUvarint(payload, uint64(len(l.Value)))
			payload = append(payload, l.Value...)
		}
		w.writeRecordLocked(payload)
		w.loggedInSeg[ref] = true
	}
	return ref
}

// Log writes one append batch (series records as needed plus a samples
// record) and returns a durability mark for WaitDurable. It does not wait
// for the data to reach disk.
func (w *WAL) Log(batch []TimeSeries) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	n := 0
	for _, ts := range batch {
		n += len(ts.Samples)
	}
	if n > 0 {
		payload := []byte{recSamples}
		payload = binary.AppendUvarint(payload, uint64(n))
		prevT := int64(0)
		first := true
		for _, ts := range batch {
			if len(ts.Samples) == 0 {
				continue
			}
			ref := w.refLocked(ts.Labels)
			for _, s := range ts.Samples {
				payload = binary.AppendUvarint(payload, ref)
				if first {
					payload = binary.AppendUvarint(payload, zigzag(s.T))
					first = false
				} else {
					payload = binary.AppendUvarint(payload, zigzag(s.T-prevT))
				}
				prevT = s.T
				payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(s.V))
			}
		}
		w.writeRecordLocked(payload)
	}
	w.written++
	mark := w.written
	if w.err != nil {
		return mark, w.err
	}
	if w.segBytes >= w.opts.SegmentBytes {
		w.rotateLocked()
	}
	return mark, w.err
}

// rotateLocked syncs and closes the current segment and opens the next.
func (w *WAL) rotateLocked() {
	w.flushSyncLocked()
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.openSegmentLocked(w.seg + 1); err != nil && w.err == nil {
		w.err = err
	}
}

// Rotate forces a segment boundary (checkpointing rotates before
// snapshotting so older segments become deletable). It returns the index
// of the new current segment.
func (w *WAL) Rotate() (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	w.rotateLocked()
	return w.seg, w.err
}

// WaitDurable blocks until the batch identified by mark is fsynced (or
// the WAL fails/closes). With no fsync interval configured it performs
// the sync itself, group-committing everything written so far.
func (w *WAL) WaitDurable(mark uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.opts.FsyncInterval <= 0 {
		if w.synced < mark && !w.closed {
			w.flushSyncLocked()
		}
		return w.err
	}
	for w.synced < mark && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.synced < mark {
		return ErrWALClosed
	}
	return nil
}

// DeleteSegmentsBefore removes segments with index < keep (checkpoint
// garbage collection).
func (w *WAL) DeleteSegmentsBefore(keep int) error {
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < keep {
			if err := os.Remove(filepath.Join(w.dir, segmentName(s))); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close syncs outstanding writes and closes the segment. Further appends
// fail with ErrWALClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.err
	}
	w.flushSyncLocked()
	w.closed = true
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	w.cond.Broadcast()
	err := w.err
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	return err
}

// ReplayStats describes a crash-recovery replay.
type ReplayStats struct {
	Segments int
	Records  int
	Samples  int64
	// TailTruncated reports that the final segment ended in a torn or
	// corrupt record that was cut off (the crash-recovery repair path);
	// TailBytesDropped is how much was discarded.
	TailTruncated    bool
	TailBytesDropped int64
}

// ReplayWAL reads every segment with index >= fromSeg in dir, calling
// apply for each sample in log order. A torn or corrupt record at the
// tail of the *final* segment is repaired by truncating the file there; a
// corrupt record in any earlier segment aborts with ErrWALCorrupt —
// acknowledged data would be missing, which replay must not hide.
func ReplayWAL(dir string, fromSeg int, apply func(ls tsdb.Labels, t int64, v float64) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return st, err
	}
	series := make(map[uint64]tsdb.Labels)
	for i, seg := range segs {
		if seg < fromSeg {
			continue
		}
		last := i == len(segs)-1
		if err := replaySegment(dir, seg, last, series, apply, &st); err != nil {
			return st, err
		}
		st.Segments++
	}
	return st, nil
}

// replaySegment reads one segment file, repairing a damaged tail when
// last is true.
func replaySegment(dir string, seg int, last bool, series map[uint64]tsdb.Labels,
	apply func(ls tsdb.Labels, t int64, v float64) error, st *ReplayStats) error {
	path := filepath.Join(dir, segmentName(seg))
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	damaged := func(offset int, why string) error {
		if !last {
			return fmt.Errorf("%w: segment %d: %s at offset %d", ErrWALCorrupt, seg, why, offset)
		}
		st.TailTruncated = true
		st.TailBytesDropped = int64(len(raw) - offset)
		return os.Truncate(path, int64(offset))
	}
	if len(raw) < len(walMagic) || string(raw[:len(walMagic)]) != walMagic {
		// A header too short to identify is a torn first write; anything
		// else claiming to be a segment but mislabeled is corruption.
		if len(raw) < len(walMagic) {
			return damaged(0, "torn segment header")
		}
		return fmt.Errorf("%w: segment %d: bad magic", ErrWALCorrupt, seg)
	}
	pos := len(walMagic)
	for pos < len(raw) {
		if len(raw)-pos < 8 {
			return damaged(pos, "torn record header")
		}
		length := binary.LittleEndian.Uint32(raw[pos:])
		wantCRC := binary.LittleEndian.Uint32(raw[pos+4:])
		if uint64(len(raw)-pos-8) < uint64(length) {
			return damaged(pos, "torn record body")
		}
		payload := raw[pos+8 : pos+8+int(length)]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return damaged(pos, "record CRC mismatch")
		}
		if err := applyRecord(payload, series, apply, st); err != nil {
			if errors.Is(err, errBadRecord) {
				return damaged(pos, err.Error())
			}
			return err
		}
		st.Records++
		pos += 8 + int(length)
	}
	return nil
}

// errBadRecord marks a record whose CRC passed but whose contents do not
// parse — treated like any other torn-tail damage.
var errBadRecord = errors.New("undecodable record")

func applyRecord(payload []byte, series map[uint64]tsdb.Labels,
	apply func(ls tsdb.Labels, t int64, v float64) error, st *ReplayStats) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty payload", errBadRecord)
	}
	typ, pos := payload[0], 1
	readUvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	switch typ {
	case recSeries:
		ref, ok := readUvarint()
		if !ok {
			return fmt.Errorf("%w: series ref", errBadRecord)
		}
		nLabels, ok := readUvarint()
		if !ok || nLabels == 0 || nLabels > maxLabelsPerSeries {
			return fmt.Errorf("%w: series label count", errBadRecord)
		}
		ls := make(tsdb.Labels, 0, nLabels)
		for i := uint64(0); i < nLabels; i++ {
			var parts [2]string
			for j := 0; j < 2; j++ {
				n, ok := readUvarint()
				if !ok || uint64(len(payload)-pos) < n {
					return fmt.Errorf("%w: series label bytes", errBadRecord)
				}
				parts[j] = string(payload[pos : pos+int(n)])
				pos += int(n)
			}
			ls = append(ls, tsdb.Label{Name: parts[0], Value: parts[1]})
		}
		series[ref] = ls
	case recSamples:
		n, ok := readUvarint()
		if !ok {
			return fmt.Errorf("%w: sample count", errBadRecord)
		}
		prevT := int64(0)
		for i := uint64(0); i < n; i++ {
			ref, ok := readUvarint()
			if !ok {
				return fmt.Errorf("%w: sample ref", errBadRecord)
			}
			ls, known := series[ref]
			if !known {
				return fmt.Errorf("%w: sample for unknown series ref %d", errBadRecord, ref)
			}
			zz, ok := readUvarint()
			if !ok {
				return fmt.Errorf("%w: sample timestamp", errBadRecord)
			}
			t := unzigzag(zz)
			if i > 0 {
				t += prevT
			}
			prevT = t
			if len(payload)-pos < 8 {
				return fmt.Errorf("%w: sample value", errBadRecord)
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
			pos += 8
			if err := apply(ls, t, v); err != nil {
				return err
			}
			st.Samples++
		}
	default:
		return fmt.Errorf("%w: unknown record type %#x", errBadRecord, typ)
	}
	if pos != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes", errBadRecord, len(payload)-pos)
	}
	return nil
}
