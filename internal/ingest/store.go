package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dio/internal/obs"
	"dio/internal/tsdb"
)

// Store pairs the in-memory chunked TSDB with the WAL to make ingest
// durable: an append is acknowledged only after its WAL record is fsynced,
// and Open recovers the exact acknowledged state after a crash by loading
// the newest checkpoint and replaying the segments it does not cover.
//
// Checkpoint files are chunked snapshots named checkpoint-%08d.chunks,
// where the number N is a WAL segment index: the checkpoint contains all
// samples from segments < N, so those segments are deletable. Recovery is
// idempotent because the TSDB treats an identical (t, v) re-append as a
// no-op and rejects older timestamps — replaying a segment that overlaps
// the checkpoint cannot corrupt or duplicate anything.
//
// With Shards > 1 the store fronts a tsdb.ShardedDB and checkpoints each
// shard to its own file, checkpoint-%08d.s%03d-of-%03d.chunks. The WAL
// stays a single fan-in log (one fsync acknowledges every shard's
// writes); replay routes each record back to its shard through the same
// fingerprint hash that routed the original append. A checkpoint set is
// only usable when every shard file for its segment exists — segments are
// garbage-collected strictly after the full set is renamed into place, so
// a crash mid-checkpoint falls back to the previous complete set plus a
// longer replay, never to a partial state.
type Store struct {
	dir  string
	db   tsdb.Storage
	// sharded is non-nil when db fronts more than one shard.
	sharded *tsdb.ShardedDB
	wal     *WAL
	opts    StoreOptions

	// mu orders appends against checkpoints: appends hold RLock across
	// {WAL write, TSDB apply} so a checkpoint (Lock during WAL rotation)
	// can only observe states where every sample in a pre-rotation
	// segment is also in the TSDB.
	mu sync.RWMutex

	replay ReplayStats

	appended   atomic.Int64
	outOfOrder atomic.Int64
	duplicates atomic.Int64

	// Metric handles are installed by Instrument (possibly after traffic
	// has started), hence the atomics.
	mAppended   atomic.Pointer[obs.Counter]
	mOutOfOrder atomic.Pointer[obs.Counter]
	mDuplicate  atomic.Pointer[obs.Counter]
	mFsync      atomic.Pointer[obs.Histogram]
	mWALBytes   atomic.Pointer[obs.Counter]
	mCheckpoint atomic.Pointer[obs.Counter]
}

// StoreOptions configure the durable store.
type StoreOptions struct {
	// FsyncInterval and SegmentBytes are passed to the WAL.
	FsyncInterval time.Duration
	SegmentBytes  int64
	// Shards selects the TSDB layout: <= 1 keeps the single-DB store and
	// checkpoint format; > 1 fronts a ShardedDB with per-shard checkpoint
	// files. A store written under one shard count reopens cleanly under
	// another — recovery reshards the loaded checkpoint.
	Shards int
}

const checkpointPrefix = "checkpoint-"
const checkpointSuffix = ".chunks"

func checkpointName(seg int) string {
	return fmt.Sprintf("%s%08d%s", checkpointPrefix, seg, checkpointSuffix)
}

// shardCheckpointName names shard i's file in an of-shard checkpoint set
// for segment seg.
func shardCheckpointName(seg, i, of int) string {
	return fmt.Sprintf("%s%08d.s%03d-of-%03d%s", checkpointPrefix, seg, i, of, checkpointSuffix)
}

// checkpointID identifies one checkpoint file: the WAL segment it covers
// and, for per-shard files, which shard out of how many. Single-file
// checkpoints have of == 0.
type checkpointID struct {
	seg   int
	shard int
	of    int
}

func parseCheckpointName(name string) (checkpointID, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
		return checkpointID{}, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix)
	segStr, shardStr, sharded := strings.Cut(body, ".s")
	seg, err := strconv.Atoi(segStr)
	if err != nil || seg < 0 {
		return checkpointID{}, false
	}
	if !sharded {
		return checkpointID{seg: seg}, true
	}
	iStr, ofStr, ok := strings.Cut(shardStr, "-of-")
	if !ok {
		return checkpointID{}, false
	}
	i, err := strconv.Atoi(iStr)
	if err != nil || i < 0 {
		return checkpointID{}, false
	}
	of, err := strconv.Atoi(ofStr)
	if err != nil || of <= i {
		return checkpointID{}, false
	}
	return checkpointID{seg: seg, shard: i, of: of}, true
}

// completeCheckpoint describes a loadable checkpoint: the segment it
// covers and the shard layout it was written under (of == 0: one file).
type completeCheckpoint struct {
	seg int
	of  int
}

// listCheckpoints returns every complete checkpoint in dir, sorted by
// segment. A per-shard set counts only when all of its files exist; a
// partial set (crash mid-checkpoint) is invisible here and removed by the
// next successful Checkpoint's GC.
func listCheckpoints(dir string) ([]completeCheckpoint, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type key struct{ seg, of int }
	present := make(map[key]int)
	for _, e := range ents {
		if id, ok := parseCheckpointName(e.Name()); ok {
			present[key{id.seg, id.of}]++
		}
	}
	var cps []completeCheckpoint
	for k, n := range present {
		if k.of == 0 || n == k.of {
			cps = append(cps, completeCheckpoint{seg: k.seg, of: k.of})
		}
	}
	sort.Slice(cps, func(i, j int) bool {
		if cps[i].seg != cps[j].seg {
			return cps[i].seg < cps[j].seg
		}
		return cps[i].of < cps[j].of
	})
	return cps, nil
}

// loadCheckpoint reads a complete checkpoint into a Storage laid out for
// the requested shard count, resharding if the set was written under a
// different layout.
func loadCheckpoint(dir string, cp completeCheckpoint, shards int) (tsdb.Storage, error) {
	loadOne := func(name string) (*tsdb.DB, error) {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return tsdb.LoadChunkedSnapshot(f)
	}
	var loaded tsdb.Storage
	if cp.of == 0 {
		db, err := loadOne(checkpointName(cp.seg))
		if err != nil {
			return nil, fmt.Errorf("ingest: load checkpoint %d: %w", cp.seg, err)
		}
		loaded = db
	} else {
		parts := make([]*tsdb.DB, cp.of)
		for i := range parts {
			db, err := loadOne(shardCheckpointName(cp.seg, i, cp.of))
			if err != nil {
				return nil, fmt.Errorf("ingest: load checkpoint %d shard %d/%d: %w", cp.seg, i, cp.of, err)
			}
			parts[i] = db
		}
		loaded = tsdb.ShardedFrom(parts)
	}
	switch {
	case shards <= 1 && cp.of == 0:
		return loaded, nil
	case shards == cp.of:
		return loaded, nil
	case shards <= 1:
		return loaded.(*tsdb.ShardedDB).Gather(), nil
	default:
		return tsdb.Reshard(loaded, shards), nil
	}
}

// OpenStore recovers (or initialises) the durable store rooted at dir.
// The layout is dir/checkpoint-*.chunks plus dir/wal/ segments.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}

	// 1. Newest complete checkpoint, if any, seeds the TSDB — resharded
	// when it was written under a different shard count.
	cps, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	fromSeg := 0
	if len(cps) > 0 {
		newest := cps[len(cps)-1]
		fromSeg = newest.seg
		db, err := loadCheckpoint(dir, newest, opts.Shards)
		if err != nil {
			return nil, err
		}
		s.db = db
	} else if opts.Shards > 1 {
		s.db = tsdb.NewSharded(opts.Shards)
	} else {
		s.db = tsdb.New()
	}
	s.sharded, _ = s.db.(*tsdb.ShardedDB)

	// 2. Replay WAL segments the checkpoint does not cover. Overlap with
	// the checkpoint is expected (rotation happens before the snapshot);
	// the append policy makes the replay idempotent.
	walDir := filepath.Join(dir, "wal")
	st, err := ReplayWAL(walDir, fromSeg, func(ls tsdb.Labels, t int64, v float64) error {
		err := s.db.Append(ls, t, v)
		switch {
		case err == nil:
		case errors.Is(err, tsdb.ErrOutOfOrder):
			// Already present via the checkpoint (or rejected before the
			// crash): skip, exactly as the original append did.
		default:
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.replay = st

	// 3. Open the WAL for new appends (always a fresh segment).
	wal, err := OpenWAL(walDir, WALOptions{
		SegmentBytes:  opts.SegmentBytes,
		FsyncInterval: opts.FsyncInterval,
		OnFsync: func(sec float64) {
			if h := s.mFsync.Load(); h != nil {
				h.Observe(sec)
			}
		},
		OnWrite: func(n int) {
			if c := s.mWALBytes.Load(); c != nil {
				c.Add(float64(n))
			}
		},
	})
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

// DB exposes the underlying TSDB for the query engine. Reads are safe
// concurrently with appends; writes must go through Store.Append.
func (s *Store) DB() tsdb.Storage { return s.db }

// Shards reports the store's shard count (1 for the single-DB layout).
func (s *Store) Shards() int {
	if s.sharded != nil {
		return s.sharded.NumShards()
	}
	return 1
}

// ReplayStats reports what crash recovery had to do when the store was
// opened.
func (s *Store) ReplayStats() ReplayStats { return s.replay }

// AppendStats summarises one Append call.
type AppendStats struct {
	// Appended counts accepted samples, including idempotent re-appends
	// of the series head with an identical value (already durable, so
	// acknowledging them again is truthful).
	Appended   int
	OutOfOrder int // samples older than the series head, dropped
	Duplicate  int // same timestamp as the head with a different value, dropped
}

// Append logs the batch to the WAL, applies it to the TSDB, and waits for
// the WAL record to be durable before returning. Out-of-order and
// duplicate samples are dropped and counted (Prometheus remote-write
// semantics) — only I/O or WAL failures make the whole call fail, and a
// failed call means the batch was NOT acknowledged.
func (s *Store) Append(batch []TimeSeries) (AppendStats, error) {
	var st AppendStats
	s.mu.RLock()
	mark, err := s.wal.Log(batch)
	if err != nil {
		s.mu.RUnlock()
		return st, err
	}
	for _, ts := range batch {
		// One lock acquisition per series, not per sample — at streaming
		// rates the per-sample path lets concurrent dashboard readers
		// starve the writers.
		appended, ooo, dup, err := s.db.AppendSamples(ts.Labels, ts.Samples)
		if err != nil {
			s.mu.RUnlock()
			return st, err
		}
		st.Appended += appended
		st.OutOfOrder += ooo
		st.Duplicate += dup
	}
	s.mu.RUnlock()

	// Acknowledge only after the WAL record is on disk. The mark makes
	// this a group commit: one fsync covers every batch written since the
	// previous one.
	if err := s.wal.WaitDurable(mark); err != nil {
		return st, err
	}
	s.appended.Add(int64(st.Appended))
	s.outOfOrder.Add(int64(st.OutOfOrder))
	s.duplicates.Add(int64(st.Duplicate))
	if c := s.mAppended.Load(); c != nil {
		c.Add(float64(st.Appended))
	}
	if c := s.mOutOfOrder.Load(); c != nil {
		c.Add(float64(st.OutOfOrder))
	}
	if c := s.mDuplicate.Load(); c != nil {
		c.Add(float64(st.Duplicate))
	}
	return st, nil
}

// Checkpoint writes a chunked snapshot covering every WAL segment before
// the current one, then deletes those segments and older checkpoints.
// Appends continue concurrently: only the segment rotation excludes them.
func (s *Store) Checkpoint() error {
	// Rotation under the write lock: afterwards every sample in segments
	// < newSeg is guaranteed to be in the TSDB, so the snapshot taken
	// below covers them.
	s.mu.Lock()
	newSeg, err := s.wal.Rotate()
	s.mu.Unlock()
	if err != nil {
		return err
	}

	writeOne := func(db *tsdb.DB, finalName string) error {
		tmp, err := os.CreateTemp(s.dir, checkpointPrefix+"*.tmp")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if err := db.SnapshotChunked(tmp); err != nil {
			tmp.Close()
			return err
		}
		if err := fsyncFile(tmp); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), filepath.Join(s.dir, finalName))
	}
	if s.sharded != nil {
		// Per-shard files. A crash before the last rename leaves a partial
		// set; recovery ignores it (listCheckpoints requires all files) and
		// uses the previous complete checkpoint, whose WAL segments are
		// still present because GC runs only after this loop finishes.
		n := s.sharded.NumShards()
		for i := 0; i < n; i++ {
			if err := writeOne(s.sharded.Shard(i), shardCheckpointName(newSeg, i, n)); err != nil {
				return err
			}
		}
	} else {
		if err := writeOne(s.db.(*tsdb.DB), checkpointName(newSeg)); err != nil {
			return err
		}
	}
	if d, err := os.Open(s.dir); err == nil {
		fsyncFile(d)
		d.Close()
	}

	// Garbage-collect what the new checkpoint supersedes: covered WAL
	// segments, older checkpoints in any layout, and stray files from
	// same-segment checkpoints under a different shard count.
	if err := s.wal.DeleteSegmentsBefore(newSeg); err != nil {
		return err
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	curOf := 0
	if s.sharded != nil {
		curOf = s.sharded.NumShards()
	}
	for _, e := range ents {
		id, ok := parseCheckpointName(e.Name())
		if !ok {
			continue
		}
		if id.seg < newSeg || (id.seg == newSeg && id.of != curOf) {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil {
				return err
			}
		}
	}
	if c := s.mCheckpoint.Load(); c != nil {
		c.Inc()
	}
	return nil
}

// Truncate drops samples at or before keepAfter from the TSDB and
// immediately checkpoints, so a restart cannot resurrect them from the
// WAL. Returns the number of samples dropped.
func (s *Store) Truncate(keepAfter int64) (int64, error) {
	dropped := s.db.Truncate(keepAfter)
	if err := s.Checkpoint(); err != nil {
		return dropped, err
	}
	return dropped, nil
}

// Close flushes and closes the WAL. The TSDB stays readable.
func (s *Store) Close() error {
	return s.wal.Close()
}

// Instrument registers the subsystem's metrics. Counters pick up totals
// accumulated before instrumentation (replay happens during Open).
func (s *Store) Instrument(reg *obs.Registry) {
	appended := reg.Counter("dio_ingest_appended_samples_total",
		"Samples durably appended through the ingest store.", "samples")
	appended.Add(float64(s.appended.Load()))
	s.mAppended.Store(appended)

	ooo := reg.Counter("dio_ingest_out_of_order_total",
		"Ingest samples dropped for being older than the series head.", "samples")
	ooo.Add(float64(s.outOfOrder.Load()))
	s.mOutOfOrder.Store(ooo)

	dup := reg.Counter("dio_ingest_duplicate_total",
		"Ingest samples dropped for reusing the head timestamp with a different value.", "samples")
	dup.Add(float64(s.duplicates.Load()))
	s.mDuplicate.Store(dup)

	s.mFsync.Store(reg.Histogram("dio_wal_fsync_seconds",
		"WAL fsync latency.", "seconds", obs.ExponentialBuckets(0.0001, 4, 8)))
	s.mWALBytes.Store(reg.Counter("dio_wal_bytes_written_total",
		"Bytes of framed records written to the WAL.", "bytes"))
	s.mCheckpoint.Store(reg.Counter("dio_ingest_checkpoints_total",
		"Checkpoints written by the ingest store.", "checkpoints"))

	reg.Counter("dio_wal_replay_samples_total",
		"Samples replayed from the WAL at startup.", "samples").Add(float64(s.replay.Samples))
	reg.Counter("dio_wal_replay_segments_total",
		"WAL segments replayed at startup.", "segments").Add(float64(s.replay.Segments))

	reg.GaugeFunc("dio_tsdb_chunk_bytes",
		"Bytes held in sealed and head chunks across all series.", "bytes",
		func() float64 { return float64(s.db.Stats().ChunkBytes) })
	reg.GaugeFunc("dio_tsdb_bytes_per_sample",
		"Average encoded bytes per stored sample.", "bytes",
		func() float64 { return s.db.Stats().BytesPerSample })
	reg.GaugeFunc("dio_tsdb_compression_ratio",
		"Raw 16-byte samples over encoded chunk bytes.", "ratio",
		func() float64 { return s.db.Stats().CompressionRatio })

	if s.sharded != nil {
		InstrumentShards(reg, s.sharded)
	}
}

// InstrumentShards registers per-shard occupancy gauges for a sharded
// TSDB: how evenly the fingerprint hash spreads series and samples.
func InstrumentShards(reg *obs.Registry, sh *tsdb.ShardedDB) {
	series := reg.GaugeVec("dio_shard_series",
		"Series held by each TSDB shard.", "series", "shard")
	samples := reg.GaugeVec("dio_shard_samples",
		"Samples held by each TSDB shard.", "samples", "shard")
	for i := 0; i < sh.NumShards(); i++ {
		db := sh.Shard(i)
		label := strconv.Itoa(i)
		series.Func(func() float64 { return float64(db.NumSeries()) }, label)
		samples.Func(func() float64 { return float64(db.NumSamples()) }, label)
	}
	reg.GaugeFunc("dio_shard_count",
		"Configured TSDB shard count.", "shards",
		func() float64 { return float64(sh.NumShards()) })
}
