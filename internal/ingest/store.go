package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dio/internal/obs"
	"dio/internal/tsdb"
)

// Store pairs the in-memory chunked TSDB with the WAL to make ingest
// durable: an append is acknowledged only after its WAL record is fsynced,
// and Open recovers the exact acknowledged state after a crash by loading
// the newest checkpoint and replaying the segments it does not cover.
//
// Checkpoint files are chunked snapshots named checkpoint-%08d.chunks,
// where the number N is a WAL segment index: the checkpoint contains all
// samples from segments < N, so those segments are deletable. Recovery is
// idempotent because the TSDB treats an identical (t, v) re-append as a
// no-op and rejects older timestamps — replaying a segment that overlaps
// the checkpoint cannot corrupt or duplicate anything.
type Store struct {
	dir  string
	db   *tsdb.DB
	wal  *WAL
	opts StoreOptions

	// mu orders appends against checkpoints: appends hold RLock across
	// {WAL write, TSDB apply} so a checkpoint (Lock during WAL rotation)
	// can only observe states where every sample in a pre-rotation
	// segment is also in the TSDB.
	mu sync.RWMutex

	replay ReplayStats

	appended   atomic.Int64
	outOfOrder atomic.Int64
	duplicates atomic.Int64

	// Metric handles are installed by Instrument (possibly after traffic
	// has started), hence the atomics.
	mAppended   atomic.Pointer[obs.Counter]
	mOutOfOrder atomic.Pointer[obs.Counter]
	mDuplicate  atomic.Pointer[obs.Counter]
	mFsync      atomic.Pointer[obs.Histogram]
	mWALBytes   atomic.Pointer[obs.Counter]
	mCheckpoint atomic.Pointer[obs.Counter]
}

// StoreOptions configure the durable store.
type StoreOptions struct {
	// FsyncInterval and SegmentBytes are passed to the WAL.
	FsyncInterval time.Duration
	SegmentBytes  int64
}

const checkpointPrefix = "checkpoint-"
const checkpointSuffix = ".chunks"

func checkpointName(seg int) string {
	return fmt.Sprintf("%s%08d%s", checkpointPrefix, seg, checkpointSuffix)
}

func parseCheckpointName(name string) (int, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// listCheckpoints returns checkpoint segment indexes in dir, sorted.
func listCheckpoints(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var cps []int
	for _, e := range ents {
		if n, ok := parseCheckpointName(e.Name()); ok {
			cps = append(cps, n)
		}
	}
	sort.Ints(cps)
	return cps, nil
}

// OpenStore recovers (or initialises) the durable store rooted at dir.
// The layout is dir/checkpoint-*.chunks plus dir/wal/ segments.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}

	// 1. Newest checkpoint, if any, seeds the TSDB.
	cps, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	fromSeg := 0
	if len(cps) > 0 {
		fromSeg = cps[len(cps)-1]
		f, err := os.Open(filepath.Join(dir, checkpointName(fromSeg)))
		if err != nil {
			return nil, err
		}
		db, err := tsdb.LoadChunkedSnapshot(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("ingest: load checkpoint %d: %w", fromSeg, err)
		}
		s.db = db
	} else {
		s.db = tsdb.New()
	}

	// 2. Replay WAL segments the checkpoint does not cover. Overlap with
	// the checkpoint is expected (rotation happens before the snapshot);
	// the append policy makes the replay idempotent.
	walDir := filepath.Join(dir, "wal")
	st, err := ReplayWAL(walDir, fromSeg, func(ls tsdb.Labels, t int64, v float64) error {
		err := s.db.Append(ls, t, v)
		switch {
		case err == nil:
		case errors.Is(err, tsdb.ErrOutOfOrder):
			// Already present via the checkpoint (or rejected before the
			// crash): skip, exactly as the original append did.
		default:
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.replay = st

	// 3. Open the WAL for new appends (always a fresh segment).
	wal, err := OpenWAL(walDir, WALOptions{
		SegmentBytes:  opts.SegmentBytes,
		FsyncInterval: opts.FsyncInterval,
		OnFsync: func(sec float64) {
			if h := s.mFsync.Load(); h != nil {
				h.Observe(sec)
			}
		},
		OnWrite: func(n int) {
			if c := s.mWALBytes.Load(); c != nil {
				c.Add(float64(n))
			}
		},
	})
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

// DB exposes the underlying TSDB for the query engine. Reads are safe
// concurrently with appends; writes must go through Store.Append.
func (s *Store) DB() *tsdb.DB { return s.db }

// ReplayStats reports what crash recovery had to do when the store was
// opened.
func (s *Store) ReplayStats() ReplayStats { return s.replay }

// AppendStats summarises one Append call.
type AppendStats struct {
	// Appended counts accepted samples, including idempotent re-appends
	// of the series head with an identical value (already durable, so
	// acknowledging them again is truthful).
	Appended   int
	OutOfOrder int // samples older than the series head, dropped
	Duplicate  int // same timestamp as the head with a different value, dropped
}

// Append logs the batch to the WAL, applies it to the TSDB, and waits for
// the WAL record to be durable before returning. Out-of-order and
// duplicate samples are dropped and counted (Prometheus remote-write
// semantics) — only I/O or WAL failures make the whole call fail, and a
// failed call means the batch was NOT acknowledged.
func (s *Store) Append(batch []TimeSeries) (AppendStats, error) {
	var st AppendStats
	s.mu.RLock()
	mark, err := s.wal.Log(batch)
	if err != nil {
		s.mu.RUnlock()
		return st, err
	}
	for _, ts := range batch {
		// One lock acquisition per series, not per sample — at streaming
		// rates the per-sample path lets concurrent dashboard readers
		// starve the writers.
		appended, ooo, dup, err := s.db.AppendSamples(ts.Labels, ts.Samples)
		if err != nil {
			s.mu.RUnlock()
			return st, err
		}
		st.Appended += appended
		st.OutOfOrder += ooo
		st.Duplicate += dup
	}
	s.mu.RUnlock()

	// Acknowledge only after the WAL record is on disk. The mark makes
	// this a group commit: one fsync covers every batch written since the
	// previous one.
	if err := s.wal.WaitDurable(mark); err != nil {
		return st, err
	}
	s.appended.Add(int64(st.Appended))
	s.outOfOrder.Add(int64(st.OutOfOrder))
	s.duplicates.Add(int64(st.Duplicate))
	if c := s.mAppended.Load(); c != nil {
		c.Add(float64(st.Appended))
	}
	if c := s.mOutOfOrder.Load(); c != nil {
		c.Add(float64(st.OutOfOrder))
	}
	if c := s.mDuplicate.Load(); c != nil {
		c.Add(float64(st.Duplicate))
	}
	return st, nil
}

// Checkpoint writes a chunked snapshot covering every WAL segment before
// the current one, then deletes those segments and older checkpoints.
// Appends continue concurrently: only the segment rotation excludes them.
func (s *Store) Checkpoint() error {
	// Rotation under the write lock: afterwards every sample in segments
	// < newSeg is guaranteed to be in the TSDB, so the snapshot taken
	// below covers them.
	s.mu.Lock()
	newSeg, err := s.wal.Rotate()
	s.mu.Unlock()
	if err != nil {
		return err
	}

	tmp, err := os.CreateTemp(s.dir, checkpointPrefix+"*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.db.SnapshotChunked(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := fsyncFile(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, checkpointName(newSeg))); err != nil {
		return err
	}
	if d, err := os.Open(s.dir); err == nil {
		fsyncFile(d)
		d.Close()
	}

	// Garbage-collect what the new checkpoint supersedes.
	if err := s.wal.DeleteSegmentsBefore(newSeg); err != nil {
		return err
	}
	cps, err := listCheckpoints(s.dir)
	if err != nil {
		return err
	}
	for _, cp := range cps {
		if cp < newSeg {
			if err := os.Remove(filepath.Join(s.dir, checkpointName(cp))); err != nil {
				return err
			}
		}
	}
	if c := s.mCheckpoint.Load(); c != nil {
		c.Inc()
	}
	return nil
}

// Truncate drops samples at or before keepAfter from the TSDB and
// immediately checkpoints, so a restart cannot resurrect them from the
// WAL. Returns the number of samples dropped.
func (s *Store) Truncate(keepAfter int64) (int64, error) {
	dropped := s.db.Truncate(keepAfter)
	if err := s.Checkpoint(); err != nil {
		return dropped, err
	}
	return dropped, nil
}

// Close flushes and closes the WAL. The TSDB stays readable.
func (s *Store) Close() error {
	return s.wal.Close()
}

// Instrument registers the subsystem's metrics. Counters pick up totals
// accumulated before instrumentation (replay happens during Open).
func (s *Store) Instrument(reg *obs.Registry) {
	appended := reg.Counter("dio_ingest_appended_samples_total",
		"Samples durably appended through the ingest store.", "samples")
	appended.Add(float64(s.appended.Load()))
	s.mAppended.Store(appended)

	ooo := reg.Counter("dio_ingest_out_of_order_total",
		"Ingest samples dropped for being older than the series head.", "samples")
	ooo.Add(float64(s.outOfOrder.Load()))
	s.mOutOfOrder.Store(ooo)

	dup := reg.Counter("dio_ingest_duplicate_total",
		"Ingest samples dropped for reusing the head timestamp with a different value.", "samples")
	dup.Add(float64(s.duplicates.Load()))
	s.mDuplicate.Store(dup)

	s.mFsync.Store(reg.Histogram("dio_wal_fsync_seconds",
		"WAL fsync latency.", "seconds", obs.ExponentialBuckets(0.0001, 4, 8)))
	s.mWALBytes.Store(reg.Counter("dio_wal_bytes_written_total",
		"Bytes of framed records written to the WAL.", "bytes"))
	s.mCheckpoint.Store(reg.Counter("dio_ingest_checkpoints_total",
		"Checkpoints written by the ingest store.", "checkpoints"))

	reg.Counter("dio_wal_replay_samples_total",
		"Samples replayed from the WAL at startup.", "samples").Add(float64(s.replay.Samples))
	reg.Counter("dio_wal_replay_segments_total",
		"WAL segments replayed at startup.", "segments").Add(float64(s.replay.Segments))

	reg.GaugeFunc("dio_tsdb_chunk_bytes",
		"Bytes held in sealed and head chunks across all series.", "bytes",
		func() float64 { return float64(s.db.Stats().ChunkBytes) })
	reg.GaugeFunc("dio_tsdb_bytes_per_sample",
		"Average encoded bytes per stored sample.", "bytes",
		func() float64 { return s.db.Stats().BytesPerSample })
	reg.GaugeFunc("dio_tsdb_compression_ratio",
		"Raw 16-byte samples over encoded chunk bytes.", "ratio",
		func() float64 { return s.db.Stats().CompressionRatio })
}
