package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client pushes write requests to a remote /api/v1/write endpoint using
// the binary codec. It is the load-generator side of the subsystem (the
// dio-bench ingest experiment drives it) and is safe for concurrent use.
type Client struct {
	url  string
	http *http.Client
}

// NewClient builds a client for a dio-server base URL such as
// "http://localhost:8080".
func NewClient(baseURL string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{
		url:  baseURL + "/api/v1/write",
		http: &http.Client{Timeout: timeout},
	}
}

// WriteResult is the endpoint's accounting for one push.
type WriteResult struct {
	Appended   int `json:"appended"`
	OutOfOrder int `json:"outOfOrder"`
	Duplicate  int `json:"duplicate"`
}

// Push sends one batch and returns the server's accounting. A non-2xx
// response is an error: the batch must not be assumed durable.
func (c *Client) Push(ctx context.Context, batch []TimeSeries) (WriteResult, error) {
	var res WriteResult
	body := EncodeBinary(batch)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(body))
	if err != nil {
		return res, err
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	resp, err := c.http.Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return res, fmt.Errorf("ingest: write rejected: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, fmt.Errorf("ingest: bad write response: %w", err)
	}
	return res, nil
}
