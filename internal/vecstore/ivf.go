package vecstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dio/internal/embedding"
)

// IVF is an inverted-file index with a k-means coarse quantiser, the
// approximate structure FAISS calls IndexIVFFlat. Vectors are assigned to
// their nearest centroid; a search probes only the NProbe closest lists,
// trading recall for speed. Build must be called after all Adds (further
// Adds after Build assign incrementally to existing lists).
type IVF struct {
	mu        sync.RWMutex
	dim       int
	nlist     int
	nprobe    int
	centroids []embedding.Vector
	lists     [][]int // per-centroid slice of entry indexes
	ids       []string
	vecs      []embedding.Vector
	pos       map[string]int
	built     bool
	seed      int64
}

// NewIVF returns an empty IVF index with nlist inverted lists probing
// nprobe lists per search.
func NewIVF(dim, nlist, nprobe int, seed int64) *IVF {
	if nlist < 1 {
		nlist = 1
	}
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	return &IVF{dim: dim, nlist: nlist, nprobe: nprobe, pos: make(map[string]int), seed: seed}
}

// Add stores vec under id. Before Build, vectors are buffered; after
// Build, they are assigned to the nearest existing centroid.
func (ix *IVF) Add(id string, vec embedding.Vector) error {
	if len(vec) != ix.dim {
		return fmt.Errorf("vecstore: vector dim %d does not match index dim %d", len(vec), ix.dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.pos[id]; ok {
		return fmt.Errorf("vecstore: duplicate id %q in IVF index", id)
	}
	i := len(ix.ids)
	ix.pos[id] = i
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, embedding.Clone(vec))
	if ix.built {
		c := ix.nearestCentroid(vec)
		ix.lists[c] = append(ix.lists[c], i)
	}
	return nil
}

// Len returns the number of stored vectors.
func (ix *IVF) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.ids)
}

// Built reports whether the coarse quantiser has been trained.
func (ix *IVF) Built() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.built
}

// Build trains the k-means coarse quantiser on the buffered vectors and
// assigns every vector to an inverted list. iters bounds the Lloyd
// iterations (10 is plenty for retrieval purposes).
func (ix *IVF) Build(iters int) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.vecs) == 0 {
		return errors.New("vecstore: cannot build IVF index with no vectors")
	}
	if ix.nlist > len(ix.vecs) {
		ix.nlist = len(ix.vecs)
		if ix.nprobe > ix.nlist {
			ix.nprobe = ix.nlist
		}
	}
	rng := rand.New(rand.NewSource(ix.seed))
	// k-means++ style seeding: random distinct picks.
	perm := rng.Perm(len(ix.vecs))
	ix.centroids = make([]embedding.Vector, ix.nlist)
	for c := 0; c < ix.nlist; c++ {
		ix.centroids[c] = embedding.Clone(ix.vecs[perm[c]])
	}
	assign := make([]int, len(ix.vecs))
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range ix.vecs {
			c := ix.nearestCentroid(v)
			if assign[i] != c || it == 0 {
				assign[i] = c
				changed = true
			}
		}
		// Recompute centroids as (normalised) means.
		sums := make([]embedding.Vector, ix.nlist)
		counts := make([]int, ix.nlist)
		for c := range sums {
			sums[c] = make(embedding.Vector, ix.dim)
		}
		for i, v := range ix.vecs {
			c := assign[i]
			counts[c]++
			for d := range v {
				sums[c][d] += v[d]
			}
		}
		for c := range sums {
			if counts[c] == 0 {
				// Re-seed empty cluster with a random vector.
				sums[c] = embedding.Clone(ix.vecs[rng.Intn(len(ix.vecs))])
			}
			embedding.Normalize(sums[c])
			ix.centroids[c] = sums[c]
		}
		if !changed {
			break
		}
	}
	ix.lists = make([][]int, ix.nlist)
	for i, v := range ix.vecs {
		c := ix.nearestCentroid(v)
		ix.lists[c] = append(ix.lists[c], i)
	}
	ix.built = true
	return nil
}

// nearestCentroid returns the index of the centroid with the highest inner
// product with v. Callers must hold at least the read lock.
func (ix *IVF) nearestCentroid(v embedding.Vector) int {
	best, bestScore := 0, -2.0
	for c, cent := range ix.centroids {
		s := embedding.Dot(v, cent)
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Search probes the NProbe nearest inverted lists and returns the top-k
// hits, best first. Search on an unbuilt index falls back to exact
// brute force so results are never silently empty.
func (ix *IVF) Search(query embedding.Vector, k int) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.built {
		return bruteForce(query, ix.ids, ix.vecs, k)
	}
	// Rank centroids by similarity, probe the best nprobe lists.
	type cscore struct {
		c int
		s float64
	}
	cs := make([]cscore, len(ix.centroids))
	for c, cent := range ix.centroids {
		cs[c] = cscore{c, embedding.Dot(query, cent)}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].s > cs[j].s })
	var cand []Result
	for p := 0; p < ix.nprobe && p < len(cs); p++ {
		for _, i := range ix.lists[cs[p].c] {
			cand = append(cand, Result{ID: ix.ids[i], Score: embedding.Dot(query, ix.vecs[i])})
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].Score != cand[j].Score {
			return cand[i].Score > cand[j].Score
		}
		return cand[i].ID < cand[j].ID
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// Recall measures IVF recall@k against exact search for a query set: the
// mean fraction of exact top-k ids recovered by the approximate search.
// It is the figure of merit for the accuracy/latency trade-off bench.
func Recall(exact, approx Index, queries []embedding.Vector, k int) float64 {
	if len(queries) == 0 {
		return 0
	}
	var total float64
	for _, q := range queries {
		want := exact.Search(q, k)
		got := approx.Search(q, k)
		if len(want) == 0 {
			continue
		}
		gotSet := make(map[string]bool, len(got))
		for _, r := range got {
			gotSet[r.ID] = true
		}
		hit := 0
		for _, r := range want {
			if gotSet[r.ID] {
				hit++
			}
		}
		total += float64(hit) / float64(len(want))
	}
	return total / float64(len(queries))
}
