package vecstore

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"dio/internal/embedding"
)

// HNSW is a hierarchical navigable small-world graph index — the
// logarithmic-time approximate structure modern vector stores (and FAISS's
// IndexHNSW) use. Unlike IVF it needs no offline Build: inserts maintain
// the graph incrementally, which suits the feedback loop's live additions.
type HNSW struct {
	mu sync.RWMutex

	m              int     // max links per node per layer (level 0 uses 2M)
	efConstruction int     // candidate-list width during insert
	efSearch       int     // candidate-list width during search
	levelMult      float64 // level assignment multiplier

	rng   *rand.Rand
	entry int // entry-point node index (-1 when empty)
	maxL  int // current top layer

	ids   []string
	vecs  []embedding.Vector
	pos   map[string]int
	level []int
	// links[l][n] is the neighbour list of node n at layer l.
	links [][][]int32
	dim   int
}

// NewHNSW returns an empty graph index. m controls graph degree (16 is a
// solid default); efSearch trades recall for speed at query time.
func NewHNSW(dim, m, efConstruction, efSearch int, seed int64) *HNSW {
	if m < 2 {
		m = 2
	}
	if efConstruction < m {
		efConstruction = m * 2
	}
	if efSearch < 1 {
		efSearch = 16
	}
	return &HNSW{
		m: m, efConstruction: efConstruction, efSearch: efSearch,
		levelMult: 1 / math.Log(float64(m)),
		rng:       rand.New(rand.NewSource(seed)),
		entry:     -1,
		pos:       make(map[string]int),
		dim:       dim,
	}
}

// Len returns the number of stored vectors.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.ids)
}

// dist is the negative inner product: smaller is closer for unit vectors.
func (h *HNSW) dist(a, b embedding.Vector) float64 { return -embedding.Dot(a, b) }

// randomLevel draws a node's top layer with the standard exponential
// distribution.
func (h *HNSW) randomLevel() int {
	return int(-math.Log(h.rng.Float64()+1e-12) * h.levelMult)
}

// Add inserts vec under id.
func (h *HNSW) Add(id string, vec embedding.Vector) error {
	if len(vec) != h.dim {
		return fmt.Errorf("vecstore: vector dim %d does not match index dim %d", len(vec), h.dim)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.pos[id]; dup {
		return fmt.Errorf("vecstore: duplicate id %q in HNSW index", id)
	}
	n := len(h.ids)
	h.pos[id] = n
	h.ids = append(h.ids, id)
	h.vecs = append(h.vecs, embedding.Clone(vec))
	lvl := h.randomLevel()
	h.level = append(h.level, lvl)
	for len(h.links) <= lvl {
		h.links = append(h.links, nil)
	}
	for l := 0; l <= lvl; l++ {
		for len(h.links[l]) <= n {
			h.links[l] = append(h.links[l], nil)
		}
	}
	// Layers above lvl still need node slots for indexing consistency.
	for l := lvl + 1; l < len(h.links); l++ {
		for len(h.links[l]) <= n {
			h.links[l] = append(h.links[l], nil)
		}
	}

	if h.entry < 0 {
		h.entry = n
		h.maxL = lvl
		return nil
	}

	// Greedy descent from the top to lvl+1.
	ep := h.entry
	for l := h.maxL; l > lvl; l-- {
		ep = h.greedyClosest(vec, ep, l)
	}
	// Insert with beam search from min(maxL, lvl) down to 0.
	for l := min(h.maxL, lvl); l >= 0; l-- {
		cands := h.searchLayer(vec, ep, h.efConstruction, l)
		maxLinks := h.m
		if l == 0 {
			maxLinks = 2 * h.m
		}
		neighbours := cands
		if len(neighbours) > maxLinks {
			neighbours = neighbours[:maxLinks]
		}
		for _, nb := range neighbours {
			h.links[l][n] = append(h.links[l][n], int32(nb.node))
			h.links[l][nb.node] = append(h.links[l][nb.node], int32(n))
			// Prune over-full neighbour lists, keeping the closest.
			if len(h.links[l][nb.node]) > maxLinks {
				h.prune(nb.node, l, maxLinks)
			}
		}
		if len(cands) > 0 {
			ep = cands[0].node
		}
	}
	if lvl > h.maxL {
		h.maxL = lvl
		h.entry = n
	}
	return nil
}

// prune keeps only the maxLinks closest neighbours of node at layer l.
func (h *HNSW) prune(node, l, maxLinks int) {
	nbs := h.links[l][node]
	sort.Slice(nbs, func(i, j int) bool {
		return h.dist(h.vecs[node], h.vecs[nbs[i]]) < h.dist(h.vecs[node], h.vecs[nbs[j]])
	})
	h.links[l][node] = append([]int32(nil), nbs[:maxLinks]...)
}

// greedyClosest walks layer l greedily towards vec from ep.
func (h *HNSW) greedyClosest(vec embedding.Vector, ep, l int) int {
	cur := ep
	curD := h.dist(vec, h.vecs[cur])
	for {
		improved := false
		for _, nb := range h.links[l][cur] {
			if d := h.dist(vec, h.vecs[nb]); d < curD {
				cur, curD = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// scoredNode pairs a node with its distance to the query.
type scoredNode struct {
	node int
	d    float64
}

// nodeHeap is a min-heap by distance (closest first).
type nodeHeap []scoredNode

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(scoredNode)) }
func (h *nodeHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// maxNodeHeap is a max-heap by distance (farthest first).
type maxNodeHeap []scoredNode

func (h maxNodeHeap) Len() int           { return len(h) }
func (h maxNodeHeap) Less(i, j int) bool { return h[i].d > h[j].d }
func (h maxNodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *maxNodeHeap) Push(x any)        { *h = append(*h, x.(scoredNode)) }
func (h *maxNodeHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// searchLayer runs a beam search of width ef at layer l, returning up to
// ef nodes sorted closest-first.
func (h *HNSW) searchLayer(vec embedding.Vector, ep, ef, l int) []scoredNode {
	visited := map[int]bool{ep: true}
	start := scoredNode{ep, h.dist(vec, h.vecs[ep])}
	candidates := nodeHeap{start} // to expand, closest first
	results := maxNodeHeap{start} // best ef, farthest on top
	heap.Init(&candidates)
	heap.Init(&results)

	for candidates.Len() > 0 {
		c := heap.Pop(&candidates).(scoredNode)
		if results.Len() >= ef && c.d > results[0].d {
			break
		}
		for _, nb := range h.links[l][c.node] {
			if visited[int(nb)] {
				continue
			}
			visited[int(nb)] = true
			d := h.dist(vec, h.vecs[nb])
			if results.Len() < ef || d < results[0].d {
				heap.Push(&candidates, scoredNode{int(nb), d})
				heap.Push(&results, scoredNode{int(nb), d})
				if results.Len() > ef {
					heap.Pop(&results)
				}
			}
		}
	}
	out := make([]scoredNode, results.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&results).(scoredNode)
	}
	return out
}

// Search returns up to k nearest stored vectors, best first.
func (h *HNSW) Search(query embedding.Vector, k int) []Result {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if k <= 0 || h.entry < 0 {
		return nil
	}
	ep := h.entry
	for l := h.maxL; l > 0; l-- {
		ep = h.greedyClosest(query, ep, l)
	}
	ef := h.efSearch
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(query, ep, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, 0, len(cands))
	for _, c := range cands {
		out = append(out, Result{ID: h.ids[c.node], Score: -c.d})
	}
	// Deterministic tie ordering, matching the other indexes.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
