package vecstore

import (
	"fmt"
	"testing"
)

func TestHNSWBasics(t *testing.T) {
	dim := 16
	vecs := randomVectors(300, dim, 21)
	h := NewHNSW(dim, 16, 64, 48, 9)
	for i, v := range vecs {
		if err := h.Add(fmt.Sprintf("v%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 300 {
		t.Fatalf("len = %d", h.Len())
	}
	// Exact self-lookup.
	res := h.Search(vecs[42], 1)
	if len(res) != 1 || res[0].ID != "v42" {
		t.Fatalf("self lookup = %+v", res)
	}
	if res[0].Score < 0.999 {
		t.Errorf("self score = %g", res[0].Score)
	}
}

func TestHNSWRecall(t *testing.T) {
	dim := 24
	vecs := randomVectors(800, dim, 22)
	h := NewHNSW(dim, 16, 128, 96, 10)
	exact := NewFlat(dim)
	for i, v := range vecs {
		id := fmt.Sprintf("v%d", i)
		if err := h.Add(id, v); err != nil {
			t.Fatal(err)
		}
		must(t, exact.Add(id, v))
	}
	queries := randomVectors(40, dim, 23)
	r := Recall(exact, h, queries, 10)
	if r < 0.85 {
		t.Errorf("HNSW recall@10 = %g, want ≥ 0.85", r)
	}
}

func TestHNSWEdgeCases(t *testing.T) {
	h := NewHNSW(4, 8, 16, 16, 1)
	if res := h.Search(randomVectors(1, 4, 2)[0], 5); res != nil {
		t.Errorf("empty index search = %v", res)
	}
	v := randomVectors(2, 4, 3)
	must(t, h.Add("a", v[0]))
	if err := h.Add("a", v[1]); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := h.Add("b", randomVectors(1, 8, 4)[0]); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if res := h.Search(v[0], 0); res != nil {
		t.Errorf("k=0 search = %v", res)
	}
	// Single-node index works.
	if res := h.Search(v[0], 3); len(res) != 1 || res[0].ID != "a" {
		t.Fatalf("single node search = %+v", res)
	}
}

func TestHNSWDeterministic(t *testing.T) {
	dim := 8
	vecs := randomVectors(100, dim, 30)
	build := func() *HNSW {
		h := NewHNSW(dim, 8, 32, 32, 7)
		for i, v := range vecs {
			must(t, h.Add(fmt.Sprintf("v%d", i), v))
		}
		return h
	}
	a, b := build(), build()
	q := randomVectors(1, dim, 31)[0]
	ra, rb := a.Search(q, 10), b.Search(q, 10)
	if len(ra) != len(rb) {
		t.Fatalf("result sizes differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("results differ at %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestHNSWImplementsIndex(t *testing.T) {
	var _ Index = NewHNSW(4, 8, 16, 16, 1)
	var _ Index = NewFlat(4)
	var _ Index = NewIVF(4, 2, 1, 1)
}
