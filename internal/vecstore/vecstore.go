// Package vecstore provides vector similarity indexes standing in for the
// FAISS library used by the paper (§4): an exact Flat index and an
// approximate IVF (inverted-file, k-means coarse quantiser) index. Both
// store unit-norm embeddings and return top-k results by cosine
// similarity (inner product on normalised vectors).
package vecstore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"dio/internal/embedding"
)

// Result is one search hit.
type Result struct {
	// ID is the caller-supplied identifier of the stored vector.
	ID string
	// Score is the cosine similarity to the query, higher is closer.
	Score float64
}

// Index is the common contract of vector indexes.
type Index interface {
	// Add stores vec under id. Adding an existing id replaces the vector.
	Add(id string, vec embedding.Vector) error
	// Search returns up to k nearest entries by cosine similarity,
	// best first.
	Search(query embedding.Vector, k int) []Result
	// Len returns the number of stored vectors.
	Len() int
}

// Flat is an exact brute-force index. It is safe for concurrent use.
type Flat struct {
	mu   sync.RWMutex
	dim  int
	ids  []string
	vecs []embedding.Vector
	pos  map[string]int
}

// NewFlat returns an empty exact index for dim-dimensional vectors.
func NewFlat(dim int) *Flat {
	return &Flat{dim: dim, pos: make(map[string]int)}
}

// Dim returns the index dimensionality.
func (f *Flat) Dim() int { return f.dim }

// Add stores vec under id, replacing any previous vector with that id.
func (f *Flat) Add(id string, vec embedding.Vector) error {
	if len(vec) != f.dim {
		return fmt.Errorf("vecstore: vector dim %d does not match index dim %d", len(vec), f.dim)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if i, ok := f.pos[id]; ok {
		f.vecs[i] = embedding.Clone(vec)
		return nil
	}
	f.pos[id] = len(f.ids)
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, embedding.Clone(vec))
	return nil
}

// Len returns the number of stored vectors.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.ids)
}

// Get returns the stored vector for id, if present.
func (f *Flat) Get(id string) (embedding.Vector, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	i, ok := f.pos[id]
	if !ok {
		return nil, false
	}
	return embedding.Clone(f.vecs[i]), true
}

// Search returns the k nearest stored vectors to query, best first. Ties
// break by id for determinism.
func (f *Flat) Search(query embedding.Vector, k int) []Result {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return bruteForce(query, f.ids, f.vecs, k)
}

// bruteForce scores every candidate and keeps the top k via a partial
// selection. Ties break by id so results are deterministic.
func bruteForce(query embedding.Vector, ids []string, vecs []embedding.Vector, k int) []Result {
	if k <= 0 || len(ids) == 0 {
		return nil
	}
	res := make([]Result, 0, len(ids))
	for i, v := range vecs {
		res = append(res, Result{ID: ids[i], Score: embedding.Dot(query, v)})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].ID < res[j].ID
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// flatState is the gob wire form of a Flat index.
type flatState struct {
	Dim  int
	IDs  []string
	Vecs []embedding.Vector
}

// Save serialises the index.
func (f *Flat) Save(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return gob.NewEncoder(w).Encode(flatState{Dim: f.dim, IDs: f.ids, Vecs: f.vecs})
}

// LoadFlat deserialises an index saved with Save.
func LoadFlat(r io.Reader) (*Flat, error) {
	var st flatState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, err
	}
	if len(st.IDs) != len(st.Vecs) {
		return nil, errors.New("vecstore: corrupt flat index state")
	}
	f := NewFlat(st.Dim)
	f.ids = st.IDs
	f.vecs = st.Vecs
	for i, id := range st.IDs {
		f.pos[id] = i
	}
	return f, nil
}
