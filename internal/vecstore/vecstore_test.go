package vecstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dio/internal/embedding"
)

// randomVectors returns n unit vectors of the given dim.
func randomVectors(n, dim int, seed int64) []embedding.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]embedding.Vector, n)
	for i := range out {
		v := make(embedding.Vector, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		embedding.Normalize(v)
		out[i] = v
	}
	return out
}

func TestFlatAddSearch(t *testing.T) {
	f := NewFlat(4)
	vecs := randomVectors(10, 4, 1)
	for i, v := range vecs {
		if err := f.Add(fmt.Sprintf("v%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 10 {
		t.Fatalf("len = %d, want 10", f.Len())
	}
	// Searching with a stored vector must return it first with score ≈1.
	res := f.Search(vecs[3], 3)
	if len(res) != 3 || res[0].ID != "v3" {
		t.Fatalf("search result = %+v", res)
	}
	if res[0].Score < 0.999 {
		t.Errorf("self-similarity = %g", res[0].Score)
	}
	// Scores are non-increasing.
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Errorf("results not sorted: %+v", res)
		}
	}
}

func TestFlatReplace(t *testing.T) {
	f := NewFlat(2)
	must(t, f.Add("a", embedding.Vector{1, 0}))
	must(t, f.Add("a", embedding.Vector{0, 1}))
	if f.Len() != 1 {
		t.Fatalf("len = %d after replace, want 1", f.Len())
	}
	v, ok := f.Get("a")
	if !ok || v[1] != 1 {
		t.Fatalf("replaced vector = %v", v)
	}
}

func TestFlatDimMismatch(t *testing.T) {
	f := NewFlat(3)
	if err := f.Add("x", embedding.Vector{1, 2}); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestFlatSearchEdgeCases(t *testing.T) {
	f := NewFlat(2)
	if res := f.Search(embedding.Vector{1, 0}, 5); res != nil {
		t.Errorf("search on empty index = %v", res)
	}
	must(t, f.Add("a", embedding.Vector{1, 0}))
	if res := f.Search(embedding.Vector{1, 0}, 0); res != nil {
		t.Errorf("k=0 search = %v", res)
	}
	if res := f.Search(embedding.Vector{1, 0}, 10); len(res) != 1 {
		t.Errorf("k>len search returned %d results", len(res))
	}
}

func TestFlatSaveLoad(t *testing.T) {
	f := NewFlat(4)
	vecs := randomVectors(5, 4, 2)
	for i, v := range vecs {
		must(t, f.Add(fmt.Sprintf("v%d", i), v))
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFlat(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() || g.Dim() != f.Dim() {
		t.Fatalf("loaded index differs: len %d dim %d", g.Len(), g.Dim())
	}
	a, b := f.Search(vecs[0], 3), g.Search(vecs[0], 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded search differs: %v vs %v", a, b)
		}
	}
}

func TestLoadFlatCorrupt(t *testing.T) {
	if _, err := LoadFlat(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestIVFBuildAndSearch(t *testing.T) {
	dim := 16
	vecs := randomVectors(500, dim, 3)
	ivf := NewIVF(dim, 16, 4, 7)
	exact := NewFlat(dim)
	for i, v := range vecs {
		id := fmt.Sprintf("v%d", i)
		must(t, ivf.Add(id, v))
		must(t, exact.Add(id, v))
	}
	if ivf.Built() {
		t.Fatal("index should not be built yet")
	}
	// Before Build, search falls back to exact.
	pre := ivf.Search(vecs[0], 5)
	if pre[0].ID != "v0" {
		t.Fatalf("pre-build search = %+v", pre[0])
	}
	if err := ivf.Build(10); err != nil {
		t.Fatal(err)
	}
	if !ivf.Built() {
		t.Fatal("index should be built")
	}
	queries := randomVectors(50, dim, 4)
	r := Recall(exact, ivf, queries, 10)
	if r < 0.5 {
		t.Errorf("recall@10 = %g, want ≥ 0.5 with nprobe=4/16", r)
	}
	// More probes must not reduce recall below the fewer-probe setting
	// substantially (sanity of the accuracy/latency trade-off).
	wide := NewIVF(dim, 16, 16, 7)
	for i, v := range vecs {
		must(t, wide.Add(fmt.Sprintf("v%d", i), v))
	}
	must(t, wide.Build(10))
	if rw := Recall(exact, wide, queries, 10); rw < 0.999 {
		t.Errorf("nprobe=nlist recall = %g, want ≈1", rw)
	}
}

func TestIVFDuplicateID(t *testing.T) {
	ivf := NewIVF(2, 2, 1, 1)
	must(t, ivf.Add("a", embedding.Vector{1, 0}))
	if err := ivf.Add("a", embedding.Vector{0, 1}); err == nil {
		t.Fatal("expected duplicate id error")
	}
}

func TestIVFEmptyBuild(t *testing.T) {
	ivf := NewIVF(2, 2, 1, 1)
	if err := ivf.Build(5); err == nil {
		t.Fatal("expected error building empty index")
	}
}

func TestIVFAddAfterBuild(t *testing.T) {
	dim := 8
	vecs := randomVectors(50, dim, 5)
	ivf := NewIVF(dim, 4, 4, 9)
	for i, v := range vecs {
		must(t, ivf.Add(fmt.Sprintf("v%d", i), v))
	}
	must(t, ivf.Build(5))
	extra := randomVectors(1, dim, 6)[0]
	must(t, ivf.Add("extra", extra))
	res := ivf.Search(extra, 1)
	if len(res) != 1 || res[0].ID != "extra" {
		t.Fatalf("post-build add not searchable: %+v", res)
	}
}

func TestSearchResultsSortedProperty(t *testing.T) {
	f := NewFlat(4)
	vecs := randomVectors(64, 4, 11)
	for i, v := range vecs {
		must(t, f.Add(fmt.Sprintf("v%d", i), v))
	}
	prop := func(seed int64, k uint8) bool {
		q := randomVectors(1, 4, seed)[0]
		res := f.Search(q, int(k%32))
		if len(res) > int(k%32) {
			return false
		}
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
