package vendors_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"dio/internal/catalog"
	"dio/internal/core"
	"dio/internal/fivegsim"
	"dio/internal/llm"
	"dio/internal/promql"
	"dio/internal/tsdb"
	"dio/internal/vendors"
)

func TestVendorBRename(t *testing.T) {
	v := vendors.VendorB()
	cases := map[string]string{
		"amfcc_n1_auth_attempt":                   "amfCcN1AuthAtt",
		"amfcc_initial_registration_success":      "amfCcInitialRegistrationSucc",
		"smfsm_pdu_session_establishment_attempt": "smfSmPduSessionEstablishmentAtt",
		"upfgtp_n3_dl_bytes":                      "upfGtpN3DlBytes",
		"amfcc_registered_ues":                    "amfCcRegisteredUes",
		"nrf_system_cpu_usage_percent":            "nrfSystemCpuUsagePercent",
	}
	for in, want := range cases {
		if got := v.Rename(in); got != want {
			t.Errorf("Rename(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVendorBNamesAreValidPromQLIdentifiers(t *testing.T) {
	cat := catalog.Generate()
	tr, err := vendors.Translate(cat, vendors.VendorB())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Catalog.Metrics[:200] {
		q := "sum(" + m.Name + ")"
		if _, err := promql.Parse(q); err != nil {
			t.Fatalf("vendor name %q is not a valid selector: %v", m.Name, err)
		}
	}
}

func TestTranslateBijective(t *testing.T) {
	cat := catalog.Generate()
	tr, err := vendors.Translate(cat, vendors.VendorB())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Catalog.Metrics) != len(cat.Metrics) {
		t.Fatalf("translated %d of %d metrics", len(tr.Catalog.Metrics), len(cat.Metrics))
	}
	for canonical, vendor := range tr.ToVendor {
		if tr.ToCanonical[vendor] != canonical {
			t.Fatalf("mapping not bijective at %s ↔ %s", canonical, vendor)
		}
	}
	// Documentation is rephrased, not copied.
	m, _ := cat.Lookup("amfcc_n1_auth_attempt")
	vm, ok := tr.Catalog.Lookup("amfCcN1AuthAtt")
	if !ok {
		t.Fatal("translated metric missing")
	}
	if vm.Description == m.Description {
		t.Error("vendor description identical to canonical")
	}
	if !strings.Contains(vm.Description, "Peg counter") {
		t.Errorf("vendor phrasing missing: %s", vm.Description)
	}
}

func TestMerge(t *testing.T) {
	cat := catalog.Generate()
	tr, err := vendors.Translate(cat, vendors.VendorB())
	if err != nil {
		t.Fatal(err)
	}
	merged := vendors.Merge(cat, tr)
	if len(merged.Metrics) != 2*len(cat.Metrics) {
		t.Fatalf("merged has %d metrics, want %d", len(merged.Metrics), 2*len(cat.Metrics))
	}
	// Both spellings resolve.
	if _, ok := merged.Lookup("amfcc_n1_auth_attempt"); !ok {
		t.Error("canonical name missing from merge")
	}
	if _, ok := merged.Lookup("amfCcN1AuthAtt"); !ok {
		t.Error("vendor name missing from merge")
	}
	// Functions not duplicated.
	if len(merged.Functions) != len(cat.Functions) {
		t.Errorf("functions duplicated: %d", len(merged.Functions))
	}
}

// TestCopilotOverVendorBDeployment is the §5.1 aha: the same pipeline
// answers questions against a vendor-B deployment because the
// domain-specific database documents vendor-B names.
func TestCopilotOverVendorBDeployment(t *testing.T) {
	cat := catalog.Generate()
	vb := vendors.VendorB()
	tr, err := vendors.Translate(cat, vb)
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New()
	cfg := fivegsim.DefaultConfig()
	cfg.Duration = 15 * time.Minute
	cfg.RenameMetric = vb.Rename
	if _, err := fivegsim.Populate(db, cat, cfg); err != nil {
		t.Fatal(err)
	}
	// The TSDB speaks vendor B.
	if !db.HasMetric("smfSmPduSessionsActive") {
		t.Fatalf("vendor-B deployment missing renamed series; has %v", db.MetricNames()[:5])
	}
	if db.HasMetric("smfsm_pdu_sessions_active") {
		t.Fatal("canonical names leaked into the vendor-B deployment")
	}

	cp, err := core.New(core.Config{Catalog: tr.Catalog, TSDB: db, Model: llm.MustNew("gpt-4")})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := cp.Ask(context.Background(), "How many PDU sessions are currently active?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.ExecErr != nil {
		t.Fatalf("execution failed: %v (query %s)", ans.ExecErr, ans.Query)
	}
	if !strings.Contains(ans.Query, "smfSmPduSessionsActive") {
		t.Fatalf("query does not use the vendor name: %s", ans.Query)
	}
	if len(promql.Numeric(ans.Value)) == 0 {
		t.Fatal("no numeric answer")
	}
}
