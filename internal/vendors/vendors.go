// Package vendors addresses the paper's §5.1 challenge — "diverse network
// function vendor formats": every virtualised NF vendor ships its own
// metric naming scheme and documentation style, and integrating them is a
// barrier for operators. The package models a second vendor whose catalog
// uses a camelCase naming convention and differently-phrased documentation,
// a deterministic translator between canonical and vendor-specific
// catalogs, and a merger that builds one domain-specific database spanning
// vendors — demonstrating the paper's thesis that a documentation-grounded
// copilot absorbs format diversity without code changes.
package vendors

import (
	"fmt"
	"strings"

	"dio/internal/catalog"
)

// Vendor describes one vNF provider's metric format.
type Vendor struct {
	// ID tags the vendor ("vendor-b").
	ID string
	// rename maps a canonical metric name to the vendor's spelling.
	rename func(string) string
	// rephrase produces the vendor's documentation for a canonical metric.
	rephrase func(*catalog.Metric) string
}

// Rename maps a canonical metric name into this vendor's convention.
func (v *Vendor) Rename(name string) string { return v.rename(name) }

// variantAbbrevB is vendor B's suffix convention.
var variantAbbrevB = map[string]string{
	"attempt": "Att", "success": "Succ", "failure": "Fail",
	"timeout": "Tmo", "reject": "Rej", "abort": "Abo",
	"retransmission": "Rtx", "request": "Req",
}

// VendorB returns the synthetic second vendor: camelCase names with
// abbreviated lifecycle suffixes ("amfcc_n1_auth_attempt" becomes
// "amfCcN1AuthAtt") and telegraphic documentation.
func VendorB() *Vendor {
	return &Vendor{
		ID: "vendor-b",
		rename: func(name string) string {
			parts := strings.Split(name, "_")
			var b strings.Builder
			for i, p := range parts {
				if ab, ok := variantAbbrevB[p]; ok && i == len(parts)-1 {
					b.WriteString(ab)
					continue
				}
				if i == 0 {
					// Split the fused nf+service prefix for camel casing:
					// amfcc → amfCc.
					p = splitPrefix(p)
					b.WriteString(p)
					continue
				}
				b.WriteString(strings.ToUpper(p[:1]) + p[1:])
			}
			return b.String()
		},
		rephrase: func(m *catalog.Metric) string {
			nf := strings.ToUpper(m.NF)
			long := catalog.NFLongNames[m.NF]
			subject := subjectPhrase(m)
			switch m.Type {
			case catalog.Gauge:
				return fmt.Sprintf("Current level of %s on the %s element (%s). Type: LEVEL.", subject, nf, long)
			case catalog.HistogramBucket, catalog.HistogramSum, catalog.HistogramCount:
				return fmt.Sprintf("Latency distribution statistic for %s on the %s element. Type: DIST.", subject, nf)
			default:
				return fmt.Sprintf("Peg counter. Incremented for each %s on the %s element (%s). Type: PEG, 64-bit.", subject, nf, long)
			}
		},
	}
}

// splitPrefix turns a fused nf+service prefix into camel form: amfcc →
// amfCc, smfsm → smfSm, n3iwfike → n3iwfIke. It relies on the known NF
// names to find the boundary.
func splitPrefix(p string) string {
	for _, nf := range catalog.NFNames() {
		if strings.HasPrefix(p, nf) && len(p) > len(nf) {
			svc := p[len(nf):]
			return nf + strings.ToUpper(svc[:1]) + svc[1:]
		}
	}
	return p
}

// subjectPhrase recovers the human phrase a metric measures, preferring
// the procedure phrase from the canonical tables.
func subjectPhrase(m *catalog.Metric) string {
	if m.Procedure != "" {
		for _, p := range catalog.Procedures() {
			if p.NF == m.NF && p.Service == m.Service && p.Slug == m.Procedure {
				if m.Variant != "" && !strings.HasPrefix(m.Variant, "duration") {
					return p.Phrase + " " + strings.ReplaceAll(m.Variant, "_", " ")
				}
				return p.Phrase
			}
		}
	}
	// Fall back to the leading words of the canonical description.
	d := m.Description
	if i := strings.IndexByte(d, '.'); i > 0 {
		d = d[:i]
	}
	d = strings.TrimPrefix(d, "The number of ")
	return d
}

// Translation is the output of translating a catalog into a vendor format.
type Translation struct {
	// Catalog is the vendor-format domain-specific database.
	Catalog *catalog.Database
	// ToVendor maps canonical names to vendor names.
	ToVendor map[string]string
	// ToCanonical is the inverse mapping.
	ToCanonical map[string]string
}

// Translate builds the vendor-format catalog from the canonical one. Every
// metric keeps its semantics (NF, procedure, type) but carries the
// vendor's name and documentation, so a copilot built over the translated
// catalog serves a deployment of that vendor.
func Translate(src *catalog.Database, v *Vendor) (*Translation, error) {
	tr := &Translation{
		ToVendor:    make(map[string]string, len(src.Metrics)),
		ToCanonical: make(map[string]string, len(src.Metrics)),
	}
	metrics := make([]*catalog.Metric, 0, len(src.Metrics))
	for _, m := range src.Metrics {
		name := v.Rename(m.Name)
		if prev, dup := tr.ToCanonical[name]; dup {
			return nil, fmt.Errorf("vendors: %s name collision: %s and %s both map to %s", v.ID, prev, m.Name, name)
		}
		tr.ToVendor[m.Name] = name
		tr.ToCanonical[name] = m.Name
		cp := *m
		cp.Name = name
		cp.Description = v.rephrase(m)
		metrics = append(metrics, &cp)
	}
	// Bespoke functions are vendor-neutral recipes; carry them over.
	tr.Catalog = catalog.NewDatabase(metrics, src.Functions)
	return tr, nil
}

// Merge combines the canonical catalog with a vendor translation into one
// domain-specific database covering a mixed-vendor deployment (§5.1:
// "multi-source data integration"). Functions are de-duplicated by name.
func Merge(canonical *catalog.Database, translations ...*Translation) *catalog.Database {
	var metrics []*catalog.Metric
	metrics = append(metrics, canonical.Metrics...)
	for _, tr := range translations {
		metrics = append(metrics, tr.Catalog.Metrics...)
	}
	seen := make(map[string]bool)
	var funcs []*catalog.FunctionDef
	for _, f := range canonical.Functions {
		if !seen[f.Name] {
			seen[f.Name] = true
			funcs = append(funcs, f)
		}
	}
	return catalog.NewDatabase(metrics, funcs)
}
