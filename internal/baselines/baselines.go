// Package baselines implements the two compared approaches of §4.2.1:
//
//   - DIN-SQL, the decomposed-prompting state of the art, adapted to
//     operator data exactly as the paper describes: the same 20 few-shot
//     examples as DIO (with PromQL instead of SQL), and — because the full
//     schema does not fit the context window — approximately 600 metric
//     NAMES sampled uniformly at random as the schema section of the
//     prompt (no documentation).
//
//   - GPT-4 direct prompting: the same 600-name schema subset, no few-shot
//     examples.
//
// Both produce a PromQL query per question; the benchmark executes it and
// scores execution accuracy.
package baselines

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"dio/internal/catalog"
	"dio/internal/core"
	"dio/internal/llm"
	"dio/internal/promql"
)

// QuerySystem is anything that turns a question into a PromQL query (plus
// usage accounting). The benchmark evaluates QuerySystems.
type QuerySystem interface {
	// Name identifies the approach in result tables.
	Name() string
	// GenerateQuery produces the PromQL for one question.
	GenerateQuery(ctx context.Context, question string) (QueryResult, error)
}

// QueryResult is one generated query with its accounting.
type QueryResult struct {
	Query     string
	Metrics   []string
	Task      llm.TaskKind
	Usage     llm.Usage
	CostCents float64
}

// SchemaSample draws n metric names uniformly at random (seeded) from the
// catalog — the baselines' stand-in for a schema that does not fit the
// prompt (§4.2.1: "approximately 600 of the metric names, selected in a
// uniformly random manner").
func SchemaSample(db *catalog.Database, n int, seed int64) []llm.ContextDoc {
	names := db.MetricNames()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	if n > len(names) {
		n = len(names)
	}
	out := make([]llm.ContextDoc, 0, n)
	for _, name := range names[:n] {
		out = append(out, llm.ContextDoc{ID: name})
	}
	return out
}

// DINSQL is the adapted DIN-SQL baseline.
type DINSQL struct {
	model   *llm.Model
	schema  []llm.ContextDoc
	fewshot []llm.Example
	builder *llm.Builder
	// SelfCorrect enables DIN-SQL's self-correction stage: a retry when
	// the first generation does not parse.
	SelfCorrect bool
}

// NewDINSQL assembles the baseline with the paper's parameters.
func NewDINSQL(db *catalog.Database, model *llm.Model, schemaSize int, seed int64) *DINSQL {
	return &DINSQL{
		model:   model,
		schema:  SchemaSample(db, schemaSize, seed),
		fewshot: core.FewShotExamples(),
		builder: &llm.Builder{
			System:      "Translate the question into a PromQL query over the listed metrics. Decompose: link schema entities, classify the question, then generate.",
			TokenBudget: model.ContextWindow() - 1000,
		},
		SelfCorrect: true,
	}
}

// Name implements QuerySystem.
func (d *DINSQL) Name() string { return "DIN-SQL" }

// GenerateQuery implements QuerySystem: schema linking and generation over
// bare names plus the shared few-shot examples, with one self-correction
// retry on a syntactically invalid query.
func (d *DINSQL) GenerateQuery(ctx context.Context, question string) (QueryResult, error) {
	res, err := d.generateOnce(question)
	if err != nil {
		return QueryResult{}, err
	}
	if d.SelfCorrect && res.Query != "" {
		if _, perr := promql.Parse(res.Query); perr != nil {
			retry, rerr := d.generateOnce(question + " (fix the syntax)")
			if rerr == nil && retry.Query != "" {
				retry.Usage.PromptTokens += res.Usage.PromptTokens
				retry.Usage.CompletionTokens += res.Usage.CompletionTokens
				retry.CostCents += res.CostCents
				return retry, nil
			}
		}
	}
	return res, nil
}

func (d *DINSQL) generateOnce(question string) (QueryResult, error) {
	prompt := d.builder.Build(d.schema, d.fewshot, question)
	resp, err := d.model.Complete(llm.Request{
		Kind: llm.KindGenerateQuery, Prompt: prompt, Temperature: 0,
		Decomposed: true,
	})
	if err != nil {
		return QueryResult{}, fmt.Errorf("baselines: DIN-SQL: %w", err)
	}
	return QueryResult{Query: resp.Query, Metrics: resp.Metrics, Task: resp.Task,
		Usage: resp.Usage, CostCents: resp.CostCents}, nil
}

// Direct is the plain foundation-model baseline (zero-shot over the same
// schema subset).
type Direct struct {
	model   *llm.Model
	schema  []llm.ContextDoc
	builder *llm.Builder
}

// NewDirect assembles the zero-shot baseline.
func NewDirect(db *catalog.Database, model *llm.Model, schemaSize int, seed int64) *Direct {
	return &Direct{
		model:  model,
		schema: SchemaSample(db, schemaSize, seed),
		builder: &llm.Builder{
			System:      "Write a PromQL query over the listed metrics that answers the question.",
			TokenBudget: model.ContextWindow() - 1000,
		},
	}
}

// Name implements QuerySystem.
func (g *Direct) Name() string { return "GPT-4" }

// GenerateQuery implements QuerySystem.
func (g *Direct) GenerateQuery(ctx context.Context, question string) (QueryResult, error) {
	prompt := g.builder.Build(g.schema, nil, question)
	resp, err := g.model.Complete(llm.Request{
		Kind: llm.KindGenerateQuery, Prompt: prompt, Temperature: 0,
	})
	if err != nil {
		return QueryResult{}, fmt.Errorf("baselines: direct: %w", err)
	}
	return QueryResult{Query: resp.Query, Metrics: resp.Metrics, Task: resp.Task,
		Usage: resp.Usage, CostCents: resp.CostCents}, nil
}

// DIOAdapter exposes the DIO copilot as a QuerySystem so the benchmark can
// evaluate all three approaches uniformly.
type DIOAdapter struct {
	Copilot *core.Copilot
	Label   string
}

// Name implements QuerySystem.
func (a *DIOAdapter) Name() string {
	if a.Label != "" {
		return a.Label
	}
	return "DIO copilot"
}

// GenerateQuery implements QuerySystem.
func (a *DIOAdapter) GenerateQuery(ctx context.Context, question string) (QueryResult, error) {
	ans, err := a.Copilot.Ask(ctx, question)
	if err != nil {
		return QueryResult{}, err
	}
	var names []string
	for _, m := range ans.Metrics {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return QueryResult{Query: ans.Query, Metrics: names, Task: ans.Task,
		Usage: ans.Usage, CostCents: ans.CostCents}, nil
}
