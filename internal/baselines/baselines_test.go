package baselines_test

import (
	"context"
	"strings"
	"testing"

	"dio/internal/baselines"
	"dio/internal/core"
	"dio/internal/llm"
	"dio/internal/promql"
	"dio/internal/testenv"
)

func TestSchemaSample(t *testing.T) {
	cat, _, _, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	s := baselines.SchemaSample(cat, 600, 11)
	if len(s) != 600 {
		t.Fatalf("sample size = %d, want 600", len(s))
	}
	seen := make(map[string]bool, len(s))
	for _, d := range s {
		if d.Text != "" {
			t.Fatalf("schema sample must be bare names, got text for %s", d.ID)
		}
		if seen[d.ID] {
			t.Fatalf("duplicate name %s in sample", d.ID)
		}
		seen[d.ID] = true
		if _, ok := cat.Lookup(d.ID); !ok {
			t.Fatalf("sample contains unknown metric %s", d.ID)
		}
	}
	// Deterministic per seed; different per seed.
	s2 := baselines.SchemaSample(cat, 600, 11)
	if s[0].ID != s2[0].ID {
		t.Error("schema sample not deterministic")
	}
	s3 := baselines.SchemaSample(cat, 600, 12)
	if s[0].ID == s3[0].ID && s[1].ID == s3[1].ID && s[2].ID == s3[2].ID {
		t.Error("different seeds produced the same sample prefix")
	}
	// Oversized requests clamp.
	all := baselines.SchemaSample(cat, 1_000_000, 1)
	if len(all) != len(cat.MetricNames()) {
		t.Errorf("clamped sample = %d", len(all))
	}
}

func TestDINSQLGeneratesExecutableQuery(t *testing.T) {
	cat, db, _, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	din := baselines.NewDINSQL(cat, llm.MustNew("gpt-4"), 600, 11)
	if din.Name() != "DIN-SQL" {
		t.Errorf("name = %s", din.Name())
	}
	// A question whose metric name spells out the phrasing directly:
	// DIN-SQL should handle it even from bare names.
	res, err := din.GenerateQuery(context.Background(), "What is the PDU session establishment success rate?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Query == "" {
		t.Fatal("no query generated")
	}
	if _, err := promql.Parse(res.Query); err != nil {
		t.Fatalf("DIN-SQL query does not parse: %q: %v", res.Query, err)
	}
	if res.CostCents <= 0 {
		t.Error("cost not accounted")
	}
	_ = db
}

func TestDINSQLDeterministic(t *testing.T) {
	cat, _, _, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	din := baselines.NewDINSQL(cat, llm.MustNew("gpt-4"), 600, 11)
	q := "What is the rate of paging attempts per second?"
	a, err := din.GenerateQuery(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := din.GenerateQuery(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Query != b.Query {
		t.Fatalf("DIN-SQL not deterministic: %q vs %q", a.Query, b.Query)
	}
}

func TestDirectZeroShot(t *testing.T) {
	cat, _, _, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	direct := baselines.NewDirect(cat, llm.MustNew("gpt-4"), 600, 11)
	if direct.Name() != "GPT-4" {
		t.Errorf("name = %s", direct.Name())
	}
	res, err := direct.GenerateQuery(context.Background(), "What is the PDU session establishment success rate?")
	if err != nil {
		t.Fatal(err)
	}
	// Zero-shot: whatever it generates, accounting must be present.
	if res.Usage.PromptTokens == 0 {
		t.Error("usage not accounted")
	}
}

func TestDIOAdapter(t *testing.T) {
	cat, db, r, err := testenv.Env()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.New(core.Config{Catalog: cat, TSDB: db, Model: llm.MustNew("gpt-4"), Retriever: r})
	if err != nil {
		t.Fatal(err)
	}
	ad := &baselines.DIOAdapter{Copilot: cp}
	if ad.Name() != "DIO copilot" {
		t.Errorf("default name = %s", ad.Name())
	}
	ad.Label = "custom"
	if ad.Name() != "custom" {
		t.Errorf("label name = %s", ad.Name())
	}
	res, err := ad.GenerateQuery(context.Background(), "How many PDU sessions are currently active?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Query, "smfsm_pdu_sessions_active") {
		t.Errorf("adapter query = %q", res.Query)
	}
}
