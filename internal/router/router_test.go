package router

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"dio/internal/servecache"
	"dio/internal/tenant"
)

// testReplicas honours the DIO_REPLICAS env override (the CI multitenant
// leg runs these suites at 4 replicas).
func testReplicas(def int) int {
	if s := os.Getenv("DIO_REPLICAS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func TestRingDeterministic(t *testing.T) {
	a, b := New(5, 0), New(5, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("ring lookup for %q not deterministic", key)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	const replicas, tenants = 4, 10000
	r := New(replicas, 0)
	counts := make([]int, replicas)
	for i := 0; i < tenants; i++ {
		counts[r.Lookup(fmt.Sprintf("tenant-%d", i))]++
	}
	for rep, n := range counts {
		share := float64(n) / tenants
		if share < 0.12 || share > 0.40 {
			t.Fatalf("replica %d owns %.1f%% of tenants (counts %v), outside [12%%, 40%%]", rep, share*100, counts)
		}
	}
}

// TestRingConsistencyUnderResize pins the consistent-hashing contract:
// growing the pool from K to K+1 replicas moves only the tenants whose
// ring segment the new replica's vnodes claimed — roughly 1/(K+1) of them
// — and every moved tenant moves TO the new replica.
func TestRingConsistencyUnderResize(t *testing.T) {
	const tenants = 10000
	k := testReplicas(4)
	old, grown := New(k, 0), New(k+1, 0)
	moved := 0
	for i := 0; i < tenants; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		before, after := old.Lookup(key), grown.Lookup(key)
		if before == after {
			continue
		}
		moved++
		if after != k {
			t.Fatalf("tenant %q moved %d→%d, but only the new replica %d may gain tenants", key, before, after, k)
		}
	}
	expect := float64(tenants) / float64(k+1)
	if f := float64(moved); f < 0.5*expect || f > 1.5*expect {
		t.Fatalf("resize %d→%d moved %d tenants, want ≈%.0f (±50%%)", k, k+1, moved, expect)
	}
}

func newTestPool(replicas int) *Pool[string] {
	fronts := make([]*servecache.Front[string], replicas)
	for i := range fronts {
		i := i
		fronts[i] = servecache.NewFront(servecache.FrontConfig[string]{
			Size: 64, TTL: time.Minute,
			Compute: func(ctx context.Context, q string) (string, error) {
				return fmt.Sprintf("replica-%d/%s/%s", i, tenant.From(ctx), q), nil
			},
		})
	}
	return NewPool(fronts, 0)
}

// TestPoolRoutesTenantToOneReplica pins that all of a tenant's requests
// land on the replica the ring names, so its cache entries concentrate.
func TestPoolRoutesTenantToOneReplica(t *testing.T) {
	p := newTestPool(testReplicas(3))
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		ctx := tenant.WithID(context.Background(), id)
		want := p.Replica(id)
		v, st, err := p.Do(ctx, "q", false)
		if err != nil || st != servecache.StatusMiss {
			t.Fatalf("%s first: st=%v err=%v", id, st, err)
		}
		if wantPrefix := fmt.Sprintf("replica-%d/", want); v[:len(wantPrefix)] != wantPrefix {
			t.Fatalf("%s computed on wrong replica: %q, want prefix %q", id, v, wantPrefix)
		}
		if _, st, _ := p.Do(ctx, "q", false); st != servecache.StatusHit {
			t.Fatalf("%s revisit: st=%v, want hit (same replica, same cache)", id, st)
		}
	}
	// Entries live on exactly the owning replicas; aggregate matches.
	if p.Stats().Entries != 50 {
		t.Fatalf("aggregate entries = %d, want 50", p.Stats().Entries)
	}
	for i, f := range p.Fronts() {
		for j := 0; j < 50; j++ {
			id := fmt.Sprintf("tenant-%d", j)
			if n := f.TenantEntries(id); n > 0 && p.Replica(id) != i {
				t.Fatalf("tenant %s has %d entries on replica %d, but the ring owns it to %d", id, n, i, p.Replica(id))
			}
		}
	}
}

func TestPoolPurge(t *testing.T) {
	p := newTestPool(2)
	for i := 0; i < 10; i++ {
		p.Do(tenant.WithID(context.Background(), fmt.Sprintf("t%d", i)), "q", false)
	}
	if p.Stats().Entries == 0 {
		t.Fatal("expected cached entries before purge")
	}
	p.Purge()
	if s := p.Stats(); s.Entries != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("post-purge stats = %+v", s)
	}
}
