package router

import (
	"context"
	"strconv"

	"dio/internal/obs"
	"dio/internal/servecache"
	"dio/internal/tenant"
)

// Pool routes requests to one of K answer-cache fronts by the tenant on
// the context. All replicas share one copilot pipeline underneath; what
// the pool partitions is cache residency, so a tenant's answers live on
// exactly one replica.
type Pool[V any] struct {
	ring   *Ring
	fronts []*servecache.Front[V]

	routed *obs.CounterVec // dio_replica_requests_total{replica}; nil w/o Instrument
}

// NewPool builds a pool over the given fronts (one per replica; at least
// one required) with vnodes virtual nodes per replica (<=0 means
// DefaultVnodes).
func NewPool[V any](fronts []*servecache.Front[V], vnodes int) *Pool[V] {
	if len(fronts) == 0 {
		panic("router: NewPool requires at least one front")
	}
	return &Pool[V]{ring: New(len(fronts), vnodes), fronts: fronts}
}

// Replicas returns the replica count.
func (p *Pool[V]) Replicas() int { return p.ring.Replicas() }

// Replica returns the replica index owning a tenant.
func (p *Pool[V]) Replica(tenantID string) int { return p.ring.Lookup(tenantID) }

// Fronts exposes the per-replica fronts (tests and stats endpoints).
func (p *Pool[V]) Fronts() []*servecache.Front[V] { return p.fronts }

// Do serves one question on the replica owning the context's tenant.
func (p *Pool[V]) Do(ctx context.Context, question string, bypass bool) (V, servecache.Status, error) {
	i := p.ring.Lookup(tenant.From(ctx))
	if p.routed != nil {
		p.routed.With(strconv.Itoa(i)).Inc()
	}
	return p.fronts[i].Do(ctx, question, bypass)
}

// Stats aggregates the per-replica front counters.
func (p *Pool[V]) Stats() servecache.FrontStats {
	var agg servecache.FrontStats
	for _, f := range p.fronts {
		s := f.Stats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Coalesced += s.Coalesced
		agg.Bypasses += s.Bypasses
		agg.Evictions += s.Evictions
		agg.Entries += s.Entries
		agg.Tenants += s.Tenants
	}
	return agg
}

// Purge drops every replica's cached entries and counters.
func (p *Pool[V]) Purge() {
	for _, f := range p.fronts {
		f.Purge()
	}
}

// Instrument registers the shared cache instruments on every replica's
// front plus pool-level gauges: one summed dio_cache_entries (the fronts'
// own entry gauges would overwrite each other — GaugeVec funcs are
// last-writer-wins per label set) and per-replica request routing.
func (p *Pool[V]) Instrument(reg *obs.Registry) {
	for _, f := range p.fronts {
		f.InstrumentShared(reg)
	}
	reg.GaugeVec("dio_cache_entries",
		"Entries currently resident in a serving cache, by cache layer.", "", "cache").
		Func(func() float64 {
			n := 0
			for _, f := range p.fronts {
				n += f.Stats().Entries
			}
			return float64(n)
		}, "answer")
	p.routed = reg.CounterVec("dio_replica_requests_total",
		"Requests routed to a serving replica by the tenant hash ring.", "", "replica")
	reg.Gauge("dio_replica_count", "Serving replicas behind the tenant router.", "").
		Set(float64(len(p.fronts)))
}
