// Package router distributes tenants across K in-process serving replicas
// with a consistent-hash ring. Each replica owns its own answer-cache
// front (and, conceptually, the working set behind it), so a tenant's
// requests always land on the same replica — its cache entries concentrate
// instead of spreading K ways — and resizing the pool moves only the ring
// segments between the old and new vnode positions, not every tenant.
package router

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per replica. 128 vnodes keep the
// per-replica load imbalance of a hash ring within a few percent.
const DefaultVnodes = 128

// lookupBuckets quantizes the hash space for the O(1) lookup table: a
// bucket wholly owned by one vnode segment resolves with a single array
// load; the few buckets a vnode boundary cuts through fall back to the
// binary search. 8192 buckets against ~512 vnodes leave >90% of lookups
// on the fast path.
const lookupBuckets = 8192

// Ring is an immutable consistent-hash ring over replica indices. Safe for
// concurrent use.
type Ring struct {
	points   []ringPoint // sorted by hash
	table    []int16     // hash-prefix bucket → replica, -1 where a vnode boundary splits the bucket
	replicas int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// New builds a ring of the given replica count (minimum 1) with vnodes
// virtual nodes per replica (<=0 means DefaultVnodes).
func New(replicas, vnodes int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{replicas: replicas, points: make([]ringPoint, 0, replicas*vnodes)}
	for rep := 0; rep < replicas; rep++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("replica-%d/vnode-%d", rep, v)), replica: rep})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].replica < r.points[j].replica
	})
	r.buildTable()
	return r
}

// buildTable precomputes the bucket → replica table. A bucket containing
// no vnode position maps every hash inside it to the same successor vnode,
// so its owner can be resolved once here; buckets a vnode position falls
// into stay -1 and keep the exact binary-search semantics.
func (r *Ring) buildTable() {
	const shift = 64 - 13 // log2(lookupBuckets) high bits index the table
	r.table = make([]int16, lookupBuckets)
	for i := range r.table {
		r.table[i] = int16(r.lookupHash(uint64(i) << shift))
	}
	for _, p := range r.points {
		r.table[p.hash>>shift] = -1
	}
}

// lookupHash resolves a raw ring position to its owning replica by binary
// search — the exact, slow path.
func (r *Ring) lookupHash(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].replica
}

// Replicas returns the replica count the ring was built for.
func (r *Ring) Replicas() int { return r.replicas }

// Lookup returns the replica owning key: the first vnode clockwise from
// the key's hash. Deterministic across processes (the hash has no seed).
// Lookup sits on the per-request serving path, so most keys resolve with
// one table load; only hashes landing in a boundary bucket binary-search
// the vnode array.
func (r *Ring) Lookup(key string) int {
	h := hash64(key)
	if rep := r.table[h>>(64-13)]; rep >= 0 {
		return int(rep)
	}
	return r.lookupHash(h)
}

// hash64 is FNV-1a over the key (inlined — the stdlib hash.Hash64 route
// allocates a []byte conversion per lookup), finished with a
// splitmix64-style mixer: raw FNV clusters on short structured keys
// ("replica-0/vnode-1", ...), which skews ring segment sizes badly. Vnode
// positions and tenant lookups share it, so the layout is stable across
// builds and processes.
func hash64(key string) uint64 {
	z := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		z ^= uint64(key[i])
		z *= 1099511628211
	}
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
