package catalog

// This file registers the copilot's own dio_* self-observability metrics
// in the domain-specific database, so the ask pipeline can answer
// questions about itself ("what is the p95 ask latency over the last
// hour?") the same way it answers questions about the 5G core: the
// retriever indexes these documentation entries, the model selects the
// metric, and the sandbox evaluates the query against the self-scraped
// series in the operator store.

// selfMetricDef is the compact table row a SelfMetrics entry expands from.
type selfMetricDef struct {
	name   string
	typ    MetricType
	unit   string
	labels []string
	desc   string
	// histogram marks families that the self-scraper stores as the three
	// Prometheus series (_bucket, _sum, _count).
	histogram bool
}

var selfMetricDefs = []selfMetricDef{
	// Ask pipeline (internal/core).
	{name: "dio_ask_total", typ: Counter, labels: []string{"outcome"},
		desc: "The number of /api/v1/ask pipeline runs handled by the DIO copilot, partitioned by outcome (ok, error, exec_error)."},
	{name: "dio_ask_duration_seconds", unit: "seconds", histogram: true,
		desc: "End-to-end latency of DIO copilot ask pipeline runs, from question receipt to dashboard assembly."},
	{name: "dio_stage_duration_seconds", unit: "seconds", labels: []string{"stage"}, histogram: true,
		desc: "Per-stage latency of the DIO ask pipeline, partitioned by stage (retrieve, prompt-build, llm, sandbox-exec, dashboard)."},
	{name: "dio_llm_calls_total", typ: Counter, labels: []string{"kind"},
		desc: "The number of foundation-model completions issued by the DIO copilot, partitioned by request kind (select_metrics, generate_query)."},
	{name: "dio_llm_prompt_tokens_total", typ: Counter, unit: "tokens",
		desc: "Cumulative prompt tokens sent to the foundation model by the DIO copilot."},
	{name: "dio_llm_completion_tokens_total", typ: Counter, unit: "tokens",
		desc: "Cumulative completion tokens returned by the foundation model to the DIO copilot."},
	{name: "dio_llm_cost_cents_total", typ: Counter, unit: "cents",
		desc: "Cumulative estimated foundation-model spend of the DIO copilot, in cents."},

	// Sandbox and query engine (internal/sandbox, internal/promql).
	{name: "dio_sandbox_queries_total", typ: Counter, labels: []string{"outcome"},
		desc: "The number of model-generated PromQL queries submitted to the DIO sandbox, partitioned by outcome (executed, rejected, failed)."},
	{name: "dio_sandbox_exec_duration_seconds", unit: "seconds", histogram: true,
		desc: "Wall-clock latency of sandboxed PromQL query execution in the DIO copilot."},
	{name: "dio_sandbox_timeouts_total", typ: Counter,
		desc: "The number of sandboxed DIO queries that hit the wall-clock timeout."},
	{name: "dio_promql_queue_wait_seconds", unit: "seconds", histogram: true,
		desc: "Time DIO queries spent waiting for a PromQL engine concurrency slot before evaluating."},
	{name: "dio_promql_samples_loaded", histogram: true,
		desc: "Stored samples touched per DIO PromQL query evaluation."},

	// HTTP API (internal/httpapi).
	{name: "dio_http_requests_total", typ: Counter, labels: []string{"route", "code"},
		desc: "The number of HTTP requests served by the DIO API, partitioned by route pattern and status code."},
	{name: "dio_http_request_duration_seconds", unit: "seconds", labels: []string{"route"}, histogram: true,
		desc: "Latency of HTTP requests served by the DIO API, partitioned by route pattern."},

	// Feedback loop (internal/feedback).
	{name: "dio_feedback_issues", typ: Gauge, labels: []string{"state"},
		desc: "The number of expert feedback issues tracked by the DIO copilot, partitioned by lifecycle state (open, resolved, closed)."},
	{name: "dio_feedback_proposals", typ: Gauge,
		desc: "The number of community contribution proposals recorded by the DIO feedback tracker."},

	// Request-scoped tracing (internal/obs).
	{name: "dio_traces_captured_total", typ: Counter,
		desc: "The number of request-scoped traces the DIO copilot has captured into its in-memory trace store (browsable at /debug/traces)."},

	// Go runtime telemetry (internal/obs).
	{name: "dio_go_goroutines", typ: Gauge,
		desc: "The number of goroutines currently live in the DIO copilot process."},
	{name: "dio_go_heap_alloc_bytes", typ: Gauge, unit: "bytes",
		desc: "Bytes of heap memory currently allocated by the DIO copilot process."},
	{name: "dio_go_heap_objects", typ: Gauge,
		desc: "The number of live heap objects in the DIO copilot process."},
	{name: "dio_go_sys_bytes", typ: Gauge, unit: "bytes",
		desc: "Total bytes of memory the DIO copilot process has obtained from the operating system."},
	{name: "dio_go_gc_cycles", typ: Gauge,
		desc: "Completed garbage-collection cycles in the DIO copilot process."},
	{name: "dio_go_gc_pause_seconds", typ: Gauge, unit: "seconds",
		desc: "Cumulative stop-the-world garbage-collection pause time of the DIO copilot process."},
	{name: "dio_process_uptime_seconds", typ: Gauge, unit: "seconds",
		desc: "Seconds since the DIO copilot process started."},

	// Self-scrape loop (internal/obs).
	{name: "dio_selfscrape_scrapes_total", typ: Counter,
		desc: "The number of self-scrape passes the DIO copilot has run over its own metrics registry."},
	{name: "dio_selfscrape_samples_total", typ: Counter,
		desc: "Cumulative samples the DIO self-scrape loop has appended into the operator time-series store."},
	{name: "dio_selfscrape_errors_total", typ: Counter,
		desc: "The number of samples the DIO self-scrape loop failed to append into the operator time-series store."},

	// Durable streaming ingest (internal/ingest).
	{name: "dio_ingest_appended_samples_total", typ: Counter, unit: "samples",
		desc: "Samples durably appended through the DIO remote-write ingest store (acknowledged only after the write-ahead log fsync)."},
	{name: "dio_ingest_out_of_order_total", typ: Counter, unit: "samples",
		desc: "Remote-write samples the DIO ingest store dropped for being older than the series head."},
	{name: "dio_ingest_duplicate_total", typ: Counter, unit: "samples",
		desc: "Remote-write samples the DIO ingest store dropped for reusing the series head timestamp with a different value."},
	{name: "dio_ingest_checkpoints_total", typ: Counter,
		desc: "Checkpoints (chunked snapshots superseding older write-ahead-log segments) written by the DIO ingest store."},
	{name: "dio_wal_fsync_seconds", unit: "seconds", histogram: true,
		desc: "Latency of write-ahead-log fsyncs in the DIO ingest store (each fsync group-commits every batch written since the previous one)."},
	{name: "dio_wal_bytes_written_total", typ: Counter, unit: "bytes",
		desc: "Bytes of framed records written to the DIO ingest write-ahead log."},
	{name: "dio_wal_replay_samples_total", typ: Counter, unit: "samples",
		desc: "Samples replayed from the write-ahead log when the DIO ingest store last started."},
	{name: "dio_wal_replay_segments_total", typ: Counter,
		desc: "Write-ahead-log segments replayed when the DIO ingest store last started."},
	{name: "dio_tsdb_chunk_bytes", typ: Gauge, unit: "bytes",
		desc: "Bytes held in compressed Gorilla chunks (sealed plus open heads) across every series in the DIO time-series store."},
	{name: "dio_tsdb_bytes_per_sample", typ: Gauge, unit: "bytes",
		desc: "Average encoded bytes per sample stored in the DIO time-series store's compressed chunks."},
	{name: "dio_tsdb_compression_ratio", typ: Gauge,
		desc: "Compression ratio of the DIO time-series store: raw 16-byte samples divided by encoded chunk bytes."},

	// Sharded TSDB and distributed query execution (internal/tsdb sharding,
	// internal/promql distribute pass).
	{name: "dio_shard_count", typ: Gauge, unit: "shards",
		desc: "Configured shard count of the DIO time-series store (1 when sharding is off)."},
	{name: "dio_shard_series", typ: Gauge, unit: "series",
		desc: "Series held by each DIO time-series store shard, labelled by shard index — shows how evenly the fingerprint hash spreads the keyspace."},
	{name: "dio_shard_samples", typ: Gauge, unit: "samples",
		desc: "Samples held by each DIO time-series store shard, labelled by shard index."},
	{name: "dio_shard_fanout_seconds", unit: "seconds", histogram: true,
		desc: "Latency of the per-query sharded storage fan-out in the DIO query engine: concurrent per-shard selection plus the fingerprint-ordered merge."},
	{name: "dio_shard_partial_aggs_total", typ: Counter,
		desc: "Aggregation evaluations the DIO query engine served via per-shard partial aggregation merged centrally."},
	{name: "dio_shard_fallbacks_total", typ: Counter,
		desc: "Distributed aggregations the DIO query engine demoted to gather-then-evaluate because a runtime ordering guard could not prove the shard merge exact."},

	// Query-level profiling (internal/obs slow-query log, fed by the
	// engine's finished-query hook; browsable at /debug/queries/slow).
	{name: "dio_query_total", typ: Counter, labels: []string{"kind"},
		desc: "Queries evaluated by the DIO PromQL engine across every surface (asks, dashboard panels, direct API queries), partitioned by kind (instant, range)."},
	{name: "dio_query_slow_total", typ: Counter,
		desc: "DIO PromQL queries whose wall-clock duration reached the slow-query threshold and earned a /debug/queries/slow log entry."},
	{name: "dio_query_duration_seconds", unit: "seconds", histogram: true,
		desc: "Wall-clock duration of DIO PromQL query evaluations, measured by the engine's query-level profiler."},
	{name: "dio_query_samples", unit: "samples", histogram: true,
		desc: "Stored samples touched per DIO PromQL query evaluation, as counted by the query-level profiler feeding the slow-query log."},

	// Multi-tenant serving (internal/servecache fair gate and tenant-keyed
	// answer cache, internal/router replica pool). Tenant label cardinality
	// is capped: beyond the first 64 distinct tenants, rows aggregate under
	// tenant="other".
	{name: "dio_tenant_requests_total", typ: Counter, labels: []string{"tenant", "outcome"},
		desc: "Admission-gate decisions of the DIO serving layer, partitioned by tenant and outcome (admitted, shed_quota for token-bucket QPS exhaustion, shed_queue for fair-queue wait expiry)."},
	{name: "dio_tenant_queue_wait_seconds", unit: "seconds", labels: []string{"tenant"}, histogram: true,
		desc: "Time admitted DIO requests spent in the weighted-fair admission queue, partitioned by tenant."},
	{name: "dio_tenant_quota_remaining", typ: Gauge, labels: []string{"tenant"},
		desc: "Tokens remaining in a tenant's admission-rate bucket in the DIO serving layer (-1 for tenants without a quota)."},
	{name: "dio_tenant_cache_requests_total", typ: Counter, labels: []string{"tenant", "outcome"},
		desc: "DIO answer-cache lookups, partitioned by tenant and outcome (hit, miss, coalesced, bypass)."},
	{name: "dio_replica_requests_total", typ: Counter, labels: []string{"replica"},
		desc: "Requests the DIO tenant router dispatched to each in-process serving replica via the consistent-hash ring."},
	{name: "dio_replica_count", typ: Gauge,
		desc: "The number of in-process serving replicas behind the DIO tenant router."},
}

// SelfMetrics returns the catalog entries for the copilot's dio_* metrics.
// Histogram families expand into the three stored Prometheus series
// (_bucket, _sum, _count), matching what the self-scraper appends.
func SelfMetrics() []*Metric {
	var out []*Metric
	for _, d := range selfMetricDefs {
		if !d.histogram {
			out = append(out, &Metric{
				Name: d.name, NF: "dio", Service: "self", Type: d.typ,
				Unit: d.unit, Labels: append([]string{"job"}, d.labels...),
				Description: d.desc + " Self-observability metric exported by the DIO copilot itself.",
			})
			continue
		}
		out = append(out,
			&Metric{
				Name: d.name + "_bucket", NF: "dio", Service: "self", Type: HistogramBucket,
				Unit: d.unit, Labels: append([]string{"job", "le"}, d.labels...),
				Description: d.desc + " Cumulative histogram bucket counter; use histogram_quantile over its rate for percentiles. Self-observability metric exported by the DIO copilot itself.",
			},
			&Metric{
				Name: d.name + "_sum", NF: "dio", Service: "self", Type: HistogramSum,
				Unit: d.unit, Labels: append([]string{"job"}, d.labels...),
				Description: d.desc + " Histogram sum counter. Self-observability metric exported by the DIO copilot itself.",
			},
			&Metric{
				Name: d.name + "_count", NF: "dio", Service: "self", Type: HistogramCount,
				Labels:      append([]string{"job"}, d.labels...),
				Description: d.desc + " Histogram count counter. Self-observability metric exported by the DIO copilot itself.",
			},
		)
	}
	return out
}

// AddSelfMetrics registers the dio_* self-metrics in the database (no-op
// for names already present). Call before building the retriever index so
// self-observability questions resolve like any operator question.
func (db *Database) AddSelfMetrics() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	added := 0
	for _, m := range SelfMetrics() {
		if _, ok := db.byName[m.Name]; ok {
			continue
		}
		db.Metrics = append(db.Metrics, m)
		db.byName[m.Name] = m
		added++
	}
	if added > 0 {
		db.version.Add(1)
	}
	return added
}
