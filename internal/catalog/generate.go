package catalog

import (
	"fmt"
	"strings"
)

// Generate expands the curated tables into the full metric catalog and
// assembles the domain-specific database. Generation is fully
// deterministic: the same tables always produce the same database.
func Generate() *Database {
	var metrics []*Metric
	metrics = append(metrics, procedureMetrics()...)
	metrics = append(metrics, messageMetrics()...)
	metrics = append(metrics, gaugeMetrics()...)
	metrics = append(metrics, resourceMetrics()...)
	metrics = append(metrics, trafficMetrics()...)
	return NewDatabase(metrics, BespokeFunctions())
}

// variantDescription renders the documentation sentence for one lifecycle
// variant of a procedure, modelled on the paper's example for
// amfcc_n1_auth_request.
func variantDescription(p ProcedureDef, variant string) string {
	nfUp := strings.ToUpper(p.NF)
	long := NFLongNames[p.NF]
	var lead string
	switch variant {
	case "request":
		lead = fmt.Sprintf("The number of %s requests sent by %s.", p.Phrase, nfUp)
	case "attempt":
		lead = fmt.Sprintf("The number of %s procedure attempts at %s (%s).", p.Phrase, nfUp, long)
	case "success":
		lead = fmt.Sprintf("The number of %s procedures completed successfully at %s.", p.Phrase, nfUp)
	case "failure":
		lead = fmt.Sprintf("The number of %s procedures that failed at %s.", p.Phrase, nfUp)
	case "timeout":
		lead = fmt.Sprintf("The number of %s procedures that timed out waiting for a peer response at %s.", p.Phrase, nfUp)
	case "reject":
		lead = fmt.Sprintf("The number of %s procedures rejected by %s.", p.Phrase, nfUp)
	case "abort":
		lead = fmt.Sprintf("The number of %s procedures aborted before completion at %s.", p.Phrase, nfUp)
	case "retransmission":
		lead = fmt.Sprintf("The number of retransmitted %s messages during %s procedures at %s.", p.Message, p.Phrase, nfUp)
	default:
		lead = fmt.Sprintf("The number of %s procedure events of kind %q at %s.", p.Phrase, variant, nfUp)
	}
	return fmt.Sprintf("%s The %s message is defined in %s. 64-bit counter.", lead, p.Message, p.Spec)
}

func procedureMetrics() []*Metric {
	var out []*Metric
	for _, p := range procedures {
		for _, v := range CounterVariants {
			out = append(out, &Metric{
				Name: p.MetricName(v), NF: p.NF, Service: p.Service,
				Procedure: p.Slug, Variant: v, Type: Counter,
				Description: variantDescription(p, v),
				Labels:      []string{"instance"},
			})
		}
		for _, cause := range FailureCauses {
			out = append(out, &Metric{
				Name: p.MetricName("failure_cause_" + cause), NF: p.NF,
				Service: p.Service, Procedure: p.Slug,
				Variant: "failure_cause_" + cause, Type: Counter,
				Description: fmt.Sprintf(
					"The number of %s procedure failures at %s with cause %q. Breakdown of %s. 64-bit counter.",
					p.Phrase, strings.ToUpper(p.NF), strings.ReplaceAll(cause, "_", " "), p.MetricName("failure")),
				Labels: []string{"instance"},
			})
		}
		for _, cause := range RejectCauses {
			out = append(out, &Metric{
				Name: p.MetricName("reject_cause_" + cause), NF: p.NF,
				Service: p.Service, Procedure: p.Slug,
				Variant: "reject_cause_" + cause, Type: Counter,
				Description: fmt.Sprintf(
					"The number of %s procedures rejected by %s with cause %q. Breakdown of %s. 64-bit counter.",
					p.Phrase, strings.ToUpper(p.NF), strings.ReplaceAll(cause, "_", " "), p.MetricName("reject")),
				Labels: []string{"instance"},
			})
		}
		// Duration histogram family (bucket/sum/count are distinct series
		// families in vendor documentation).
		base := p.MetricName("duration_seconds")
		out = append(out,
			&Metric{Name: base + "_bucket", NF: p.NF, Service: p.Service,
				Procedure: p.Slug, Variant: "duration_bucket", Type: HistogramBucket, Unit: "seconds",
				Description: fmt.Sprintf("Cumulative histogram of %s procedure duration at %s, in seconds, bucketed by the le label. %s", p.Phrase, strings.ToUpper(p.NF), MetricTypeSentence(HistogramBucket)),
				Labels:      []string{"instance", "le"}},
			&Metric{Name: base + "_sum", NF: p.NF, Service: p.Service,
				Procedure: p.Slug, Variant: "duration_sum", Type: HistogramSum, Unit: "seconds",
				Description: fmt.Sprintf("Sum of observed %s procedure durations at %s, in seconds. %s", p.Phrase, strings.ToUpper(p.NF), MetricTypeSentence(HistogramSum)),
				Labels:      []string{"instance"}},
			&Metric{Name: base + "_count", NF: p.NF, Service: p.Service,
				Procedure: p.Slug, Variant: "duration_count", Type: HistogramCount,
				Description: fmt.Sprintf("Count of observed %s procedure durations at %s. %s", p.Phrase, strings.ToUpper(p.NF), MetricTypeSentence(HistogramCount)),
				Labels:      []string{"instance"}},
		)
	}
	return out
}

// MetricTypeSentence renders the trailing type sentence of a description.
func MetricTypeSentence(t MetricType) string {
	switch t {
	case Counter:
		return "64-bit counter."
	case Gauge:
		return "Gauge."
	case HistogramBucket:
		return "Cumulative 64-bit bucket counter."
	case HistogramSum:
		return "64-bit sum counter."
	case HistogramCount:
		return "64-bit count counter."
	}
	return ""
}

func messageMetrics() []*Metric {
	var out []*Metric
	for _, group := range messagesCompact {
		for _, slug := range group.slugs {
			phrase := strings.ToUpper(strings.ReplaceAll(slug, "_", " "))
			prefix := group.nf + group.service + "_" + slug
			nfUp := strings.ToUpper(group.nf)
			out = append(out,
				&Metric{Name: prefix + "_tx", NF: group.nf, Service: group.service,
					Variant: "tx", Type: Counter,
					Description: fmt.Sprintf("The number of %s messages transmitted by %s on the %s interface. The message is defined in %s. 64-bit counter.",
						phrase, nfUp, strings.ToUpper(group.service), group.spec),
					Labels: []string{"instance"}},
				&Metric{Name: prefix + "_rx", NF: group.nf, Service: group.service,
					Variant: "rx", Type: Counter,
					Description: fmt.Sprintf("The number of %s messages received by %s on the %s interface. The message is defined in %s. 64-bit counter.",
						phrase, nfUp, strings.ToUpper(group.service), group.spec),
					Labels: []string{"instance"}},
				&Metric{Name: prefix + "_error", NF: group.nf, Service: group.service,
					Variant: "error", Type: Counter,
					Description: fmt.Sprintf("The number of %s messages that could not be encoded, decoded or delivered at %s. The message is defined in %s. 64-bit counter.",
						phrase, nfUp, group.spec),
					Labels: []string{"instance"}},
			)
		}
	}
	return out
}

func gaugeMetrics() []*Metric {
	var out []*Metric
	for _, g := range gauges {
		out = append(out, &Metric{
			Name: g.MetricName(), NF: g.NF, Service: g.Service, Type: Gauge,
			Unit: g.Unit,
			Description: fmt.Sprintf("The number of %s at %s (%s). Gauge.",
				g.Phrase, strings.ToUpper(g.NF), NFLongNames[g.NF]),
			Labels: []string{"instance"},
		})
	}
	return out
}

func resourceMetrics() []*Metric {
	var out []*Metric
	for _, nf := range NFNames() {
		for _, r := range resources {
			out = append(out, &Metric{
				Name: nf + "_system_" + r.Slug, NF: nf, Service: "system",
				Variant: r.Slug, Type: r.Type, Unit: r.Unit,
				Description: fmt.Sprintf("%s of the %s (%s) workload. %s",
					capitalize(r.Phrase), strings.ToUpper(nf), NFLongNames[nf], MetricTypeSentence(r.Type)),
				Labels: []string{"instance"},
			})
		}
	}
	return out
}

func trafficMetrics() []*Metric {
	var out []*Metric
	for _, iface := range trafficInterfaces {
		for _, dir := range trafficDirections {
			for _, k := range trafficKinds {
				dirPhrase := "uplink"
				if dir == "dl" {
					dirPhrase = "downlink"
				}
				out = append(out, &Metric{
					Name: "upfgtp_" + iface + "_" + dir + "_" + k.kind,
					NF:   "upf", Service: "gtp", Variant: k.kind, Type: Counter,
					Unit: k.unit,
					Description: fmt.Sprintf("The number of %s %s on the %s interface of the UPF (User Plane Function). 64-bit counter.",
						dirPhrase, k.phrase, strings.ToUpper(iface)),
					Labels: []string{"instance"},
				})
			}
		}
	}
	return out
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
