package catalog

// This file is the curated content of the domain-specific database: the
// procedure, message, gauge, resource and traffic tables that expand into
// the >3000-metric catalog. The tables model the structure of a commercial
// 5G-core vNF provider's counter documentation.

// ProcedureDef describes one 3GPP procedure whose lifecycle the vNF
// instruments with a family of counters.
type ProcedureDef struct {
	// NF and Service locate the procedure (e.g. amf/cc).
	NF, Service string
	// Slug is the fragment used in metric names, e.g. "n1_auth". Some
	// slugs spell the full phrase, some abbreviate it, and some use
	// vendor-internal jargon — exactly the mix that makes compositional
	// name guessing unreliable (the paper's LCS NI-LR example).
	Slug string
	// Phrase is the human phrase used in documentation sentences.
	Phrase string
	// Questions are phrasings operators use when asking about the
	// procedure (first is canonical). These drive benchmark generation.
	Questions []string
	// Message is the principal protocol message of the procedure.
	Message string
	// Spec cites where the message is defined.
	Spec string
}

// Prefix returns the metric-name prefix of the procedure's service.
func (p ProcedureDef) Prefix() string { return p.NF + p.Service }

// MetricName returns the full metric name of one variant counter.
func (p ProcedureDef) MetricName(variant string) string {
	return p.Prefix() + "_" + p.Slug + "_" + variant
}

// CounterVariants are the per-procedure lifecycle counters, in export
// order. "request" counts protocol messages sent; "attempt" counts
// procedure initiations.
var CounterVariants = []string{
	"request", "attempt", "success", "failure", "timeout", "reject",
	"abort", "retransmission",
}

// FailureCauses are the per-cause failure breakdown counters.
var FailureCauses = []string{
	"congestion", "resource_unavailable", "invalid_request",
	"context_not_found", "timer_expiry", "authentication_failure",
	"protocol_error", "peer_unreachable", "internal_error", "unspecified",
}

// RejectCauses are the per-cause rejection breakdown counters.
var RejectCauses = []string{
	"congestion", "not_authorized", "invalid_state", "unsupported",
	"slice_unavailable", "unspecified",
}

// procedures is the full procedure table.
var procedures = []ProcedureDef{
	// ---- AMF call control (cc) -----------------------------------------
	{NF: "amf", Service: "cc", Slug: "initial_registration", Phrase: "initial registration",
		Questions: []string{"initial registration", "initial registrations", "UE initial registration"},
		Message:   "REGISTRATION REQUEST", Spec: "section 8.2.6 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "mobility_registration_update", Phrase: "mobility registration update",
		Questions: []string{"mobility registration update", "mobility registration updates"},
		Message:   "REGISTRATION REQUEST", Spec: "section 8.2.6 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "periodic_registration_update", Phrase: "periodic registration update",
		Questions: []string{"periodic registration update", "periodic registration updates"},
		Message:   "REGISTRATION REQUEST", Spec: "section 8.2.6 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "emergency_registration", Phrase: "emergency registration",
		Questions: []string{"emergency registration", "emergency registrations"},
		Message:   "REGISTRATION REQUEST", Spec: "section 8.2.6 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "ue_deregistration", Phrase: "UE-initiated deregistration",
		Questions: []string{"UE initiated deregistration", "UE deregistration", "deregistration initiated by the UE"},
		Message:   "DEREGISTRATION REQUEST", Spec: "section 8.2.12 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "nw_deregistration", Phrase: "network-initiated deregistration",
		Questions: []string{"network initiated deregistration", "network deregistration"},
		Message:   "DEREGISTRATION REQUEST", Spec: "section 8.2.12 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "service_request", Phrase: "service request",
		Questions: []string{"service request", "service requests", "UE service request"},
		Message:   "SERVICE REQUEST", Spec: "section 8.2.16 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "n1_auth", Phrase: "authentication",
		Questions: []string{"authentication", "UE authentication", "NAS authentication"},
		Message:   "AUTHENTICATION REQUEST", Spec: "section 8.2.1 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "smc", Phrase: "security mode control",
		Questions: []string{"security mode control", "security mode command", "SMC"},
		Message:   "SECURITY MODE COMMAND", Spec: "section 8.2.25 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "identity", Phrase: "identification",
		Questions: []string{"identification", "identity request", "UE identification"},
		Message:   "IDENTITY REQUEST", Spec: "section 8.2.21 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "config_update", Phrase: "UE configuration update",
		Questions: []string{"UE configuration update", "configuration update"},
		Message:   "CONFIGURATION UPDATE COMMAND", Spec: "section 8.2.19 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "ul_nas_transport", Phrase: "uplink NAS transport",
		Questions: []string{"uplink NAS transport", "uplink NAS messages"},
		Message:   "UL NAS TRANSPORT", Spec: "section 8.2.10 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "dl_nas_transport", Phrase: "downlink NAS transport",
		Questions: []string{"downlink NAS transport", "downlink NAS messages"},
		Message:   "DL NAS TRANSPORT", Spec: "section 8.2.11 of 3GPP TS 24.501"},
	{NF: "amf", Service: "cc", Slug: "lcs_network_induced_location_request", Phrase: "LCS network induced location request",
		Questions: []string{"LCS NI-LR", "NI-LR", "network induced location request"},
		Message:   "LOCATION SERVICES MESSAGE", Spec: "section 6.7 of 3GPP TS 23.273"},
	{NF: "amf", Service: "cc", Slug: "lcs_mobile_originated_location_request", Phrase: "LCS mobile originated location request",
		Questions: []string{"LCS MO-LR", "MO-LR", "mobile originated location request"},
		Message:   "LOCATION SERVICES MESSAGE", Spec: "section 6.2 of 3GPP TS 23.273"},
	{NF: "amf", Service: "cc", Slug: "lcs_mobile_terminated_location_request", Phrase: "LCS mobile terminated location request",
		Questions: []string{"LCS MT-LR", "MT-LR", "mobile terminated location request"},
		Message:   "LOCATION SERVICES MESSAGE", Spec: "section 6.1 of 3GPP TS 23.273"},

	// ---- AMF mobility management (mm) ----------------------------------
	{NF: "amf", Service: "mm", Slug: "paging", Phrase: "paging",
		Questions: []string{"paging", "paging procedures", "UE paging"},
		Message:   "PAGING", Spec: "section 9.2.4.1 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "ue_ctx_setup", Phrase: "initial UE context setup",
		Questions: []string{"initial context setup", "UE context setup"},
		Message:   "INITIAL CONTEXT SETUP REQUEST", Spec: "section 9.2.2.1 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "ue_ctx_release", Phrase: "UE context release",
		Questions: []string{"UE context release", "context release"},
		Message:   "UE CONTEXT RELEASE COMMAND", Spec: "section 9.2.2.5 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "ue_ctx_modification", Phrase: "UE context modification",
		Questions: []string{"UE context modification", "context modification"},
		Message:   "UE CONTEXT MODIFICATION REQUEST", Spec: "section 9.2.2.7 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "ho_preparation", Phrase: "handover preparation",
		Questions: []string{"handover preparation", "handover preparations"},
		Message:   "HANDOVER REQUIRED", Spec: "section 9.2.3.1 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "ho_resource_allocation", Phrase: "handover resource allocation",
		Questions: []string{"handover resource allocation", "handover resource allocations"},
		Message:   "HANDOVER REQUEST", Spec: "section 9.2.3.4 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "ho_notification", Phrase: "handover notification",
		Questions: []string{"handover notification", "handover notifications"},
		Message:   "HANDOVER NOTIFY", Spec: "section 9.2.3.7 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "path_switch", Phrase: "Xn handover path switch",
		Questions: []string{"path switch", "Xn handover", "Xn path switch"},
		Message:   "PATH SWITCH REQUEST", Spec: "section 9.2.3.10 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "ng_setup", Phrase: "NG setup",
		Questions: []string{"NG setup", "NG interface setup", "gNodeB NG setup"},
		Message:   "NG SETUP REQUEST", Spec: "section 9.2.6.1 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "ran_config_update", Phrase: "RAN configuration update",
		Questions: []string{"RAN configuration update", "RAN config update"},
		Message:   "RAN CONFIGURATION UPDATE", Spec: "section 9.2.6.4 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "pdu_resource_setup", Phrase: "PDU session resource setup",
		Questions: []string{"PDU session resource setup", "PDU resource setup"},
		Message:   "PDU SESSION RESOURCE SETUP REQUEST", Spec: "section 9.2.1.1 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "pdu_resource_release", Phrase: "PDU session resource release",
		Questions: []string{"PDU session resource release", "PDU resource release"},
		Message:   "PDU SESSION RESOURCE RELEASE COMMAND", Spec: "section 9.2.1.5 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "pdu_resource_modify", Phrase: "PDU session resource modification",
		Questions: []string{"PDU session resource modification", "PDU resource modify"},
		Message:   "PDU SESSION RESOURCE MODIFY REQUEST", Spec: "section 9.2.1.3 of 3GPP TS 38.413"},
	{NF: "amf", Service: "mm", Slug: "nas_non_delivery", Phrase: "NAS non-delivery indication",
		Questions: []string{"NAS non-delivery", "NAS non delivery indications"},
		Message:   "NAS NON DELIVERY INDICATION", Spec: "section 9.2.5.3 of 3GPP TS 38.413"},

	// ---- AMF event exposure / SBI (ee) ---------------------------------
	{NF: "amf", Service: "ee", Slug: "event_subscribe", Phrase: "event exposure subscription",
		Questions: []string{"event exposure subscription", "event subscriptions at the AMF"},
		Message:   "Namf_EventExposure_Subscribe", Spec: "section 5.3 of 3GPP TS 29.518"},
	{NF: "amf", Service: "ee", Slug: "event_unsubscribe", Phrase: "event exposure unsubscription",
		Questions: []string{"event exposure unsubscription", "event unsubscriptions at the AMF"},
		Message:   "Namf_EventExposure_Unsubscribe", Spec: "section 5.3 of 3GPP TS 29.518"},
	{NF: "amf", Service: "ee", Slug: "event_notify", Phrase: "event exposure notification",
		Questions: []string{"event exposure notification", "event notifications from the AMF"},
		Message:   "Namf_EventExposure_Notify", Spec: "section 5.3 of 3GPP TS 29.518"},
	{NF: "amf", Service: "ee", Slug: "n1n2_transfer", Phrase: "N1N2 message transfer",
		Questions: []string{"N1N2 message transfer", "N1N2 transfers"},
		Message:   "Namf_Communication_N1N2MessageTransfer", Spec: "section 5.2 of 3GPP TS 29.518"},

	// ---- SMF session management (sm) -----------------------------------
	{NF: "smf", Service: "sm", Slug: "pdu_session_establishment", Phrase: "PDU session establishment",
		Questions: []string{"PDU session establishment", "PDU session establishments", "PDU session setup"},
		Message:   "PDU SESSION ESTABLISHMENT REQUEST", Spec: "section 8.3.1 of 3GPP TS 24.501"},
	{NF: "smf", Service: "sm", Slug: "pdu_session_modification", Phrase: "PDU session modification",
		Questions: []string{"PDU session modification", "PDU session modifications"},
		Message:   "PDU SESSION MODIFICATION REQUEST", Spec: "section 8.3.7 of 3GPP TS 24.501"},
	{NF: "smf", Service: "sm", Slug: "pdu_session_release", Phrase: "PDU session release",
		Questions: []string{"PDU session release", "PDU session releases", "PDU session teardown"},
		Message:   "PDU SESSION RELEASE REQUEST", Spec: "section 8.3.12 of 3GPP TS 24.501"},
	{NF: "smf", Service: "sm", Slug: "sm_ctx_create", Phrase: "SM context creation",
		Questions: []string{"SM context creation", "SM context create", "session management context creation"},
		Message:   "Nsmf_PDUSession_CreateSMContext", Spec: "section 5.2.2.2 of 3GPP TS 29.502"},
	{NF: "smf", Service: "sm", Slug: "sm_ctx_update", Phrase: "SM context update",
		Questions: []string{"SM context update", "session management context update"},
		Message:   "Nsmf_PDUSession_UpdateSMContext", Spec: "section 5.2.2.3 of 3GPP TS 29.502"},
	{NF: "smf", Service: "sm", Slug: "sm_ctx_release", Phrase: "SM context release",
		Questions: []string{"SM context release", "session management context release"},
		Message:   "Nsmf_PDUSession_ReleaseSMContext", Spec: "section 5.2.2.4 of 3GPP TS 29.502"},
	{NF: "smf", Service: "sm", Slug: "ip_alloc", Phrase: "UE IP address allocation",
		Questions: []string{"IP address allocation", "UE IP allocation", "IP address assignments"},
		Message:   "PDU SESSION ESTABLISHMENT ACCEPT", Spec: "section 8.3.2 of 3GPP TS 24.501"},
	{NF: "smf", Service: "sm", Slug: "qos_flow_create", Phrase: "QoS flow creation",
		Questions: []string{"QoS flow creation", "QoS flow creations", "new QoS flows"},
		Message:   "PDU SESSION MODIFICATION COMMAND", Spec: "section 8.3.9 of 3GPP TS 24.501"},
	{NF: "smf", Service: "sm", Slug: "qos_flow_modify", Phrase: "QoS flow modification",
		Questions: []string{"QoS flow modification", "QoS flow modifications"},
		Message:   "PDU SESSION MODIFICATION COMMAND", Spec: "section 8.3.9 of 3GPP TS 24.501"},
	{NF: "smf", Service: "sm", Slug: "qos_flow_release", Phrase: "QoS flow release",
		Questions: []string{"QoS flow release", "QoS flow releases"},
		Message:   "PDU SESSION MODIFICATION COMMAND", Spec: "section 8.3.9 of 3GPP TS 24.501"},
	{NF: "smf", Service: "sm", Slug: "ebi_assignment", Phrase: "EPS bearer ID assignment",
		Questions: []string{"EBI assignment", "EPS bearer ID assignment"},
		Message:   "Namf_Communication_EBIAssignment", Spec: "section 5.2 of 3GPP TS 29.518"},
	{NF: "smf", Service: "sm", Slug: "upf_selection", Phrase: "UPF selection",
		Questions: []string{"UPF selection", "UPF selections", "user plane function selection"},
		Message:   "N4 SESSION ESTABLISHMENT REQUEST", Spec: "section 7.5.2 of 3GPP TS 29.244"},

	// ---- SMF N4/PFCP (n4) -----------------------------------------------
	{NF: "smf", Service: "n4", Slug: "session_establishment", Phrase: "N4 session establishment",
		Questions: []string{"N4 session establishment", "N4 session establishments", "PFCP session establishment"},
		Message:   "PFCP SESSION ESTABLISHMENT REQUEST", Spec: "section 7.5.2 of 3GPP TS 29.244"},
	{NF: "smf", Service: "n4", Slug: "session_modification", Phrase: "N4 session modification",
		Questions: []string{"N4 session modification", "PFCP session modification"},
		Message:   "PFCP SESSION MODIFICATION REQUEST", Spec: "section 7.5.4 of 3GPP TS 29.244"},
	{NF: "smf", Service: "n4", Slug: "session_deletion", Phrase: "N4 session deletion",
		Questions: []string{"N4 session deletion", "PFCP session deletion"},
		Message:   "PFCP SESSION DELETION REQUEST", Spec: "section 7.5.6 of 3GPP TS 29.244"},
	{NF: "smf", Service: "n4", Slug: "association_setup", Phrase: "N4 association setup",
		Questions: []string{"N4 association setup", "PFCP association setup"},
		Message:   "PFCP ASSOCIATION SETUP REQUEST", Spec: "section 7.4.4 of 3GPP TS 29.244"},
	{NF: "smf", Service: "n4", Slug: "association_release", Phrase: "N4 association release",
		Questions: []string{"N4 association release", "PFCP association release"},
		Message:   "PFCP ASSOCIATION RELEASE REQUEST", Spec: "section 7.4.4 of 3GPP TS 29.244"},
	{NF: "smf", Service: "n4", Slug: "heartbeat", Phrase: "N4 heartbeat",
		Questions: []string{"N4 heartbeat", "PFCP heartbeat", "heartbeat towards the UPF"},
		Message:   "PFCP HEARTBEAT REQUEST", Spec: "section 7.4.2 of 3GPP TS 29.244"},
	{NF: "smf", Service: "n4", Slug: "node_report", Phrase: "N4 node report",
		Questions: []string{"N4 node report", "PFCP node report"},
		Message:   "PFCP NODE REPORT REQUEST", Spec: "section 7.4.5 of 3GPP TS 29.244"},
	{NF: "smf", Service: "n4", Slug: "session_report", Phrase: "N4 session report",
		Questions: []string{"N4 session report", "PFCP session report", "usage report from the UPF"},
		Message:   "PFCP SESSION REPORT REQUEST", Spec: "section 7.5.8 of 3GPP TS 29.244"},

	// ---- SMF charging/policy (ch) ---------------------------------------
	{NF: "smf", Service: "ch", Slug: "charging_data_initial", Phrase: "initial charging data request",
		Questions: []string{"initial charging data request", "charging session start"},
		Message:   "Nchf_ConvergedCharging_Create", Spec: "section 5.3 of 3GPP TS 32.291"},
	{NF: "smf", Service: "ch", Slug: "charging_data_update", Phrase: "charging data update",
		Questions: []string{"charging data update", "charging updates"},
		Message:   "Nchf_ConvergedCharging_Update", Spec: "section 5.3 of 3GPP TS 32.291"},
	{NF: "smf", Service: "ch", Slug: "charging_data_final", Phrase: "final charging data request",
		Questions: []string{"final charging data request", "charging session termination"},
		Message:   "Nchf_ConvergedCharging_Release", Spec: "section 5.3 of 3GPP TS 32.291"},
	{NF: "smf", Service: "ch", Slug: "policy_assoc_establishment", Phrase: "SM policy association establishment",
		Questions: []string{"policy association establishment", "SM policy association"},
		Message:   "Npcf_SMPolicyControl_Create", Spec: "section 5.6 of 3GPP TS 29.512"},
	{NF: "smf", Service: "ch", Slug: "policy_assoc_modification", Phrase: "SM policy association modification",
		Questions: []string{"policy association modification", "SM policy update"},
		Message:   "Npcf_SMPolicyControl_Update", Spec: "section 5.6 of 3GPP TS 29.512"},
	{NF: "smf", Service: "ch", Slug: "policy_assoc_termination", Phrase: "SM policy association termination",
		Questions: []string{"policy association termination", "SM policy termination"},
		Message:   "Npcf_SMPolicyControl_Delete", Spec: "section 5.6 of 3GPP TS 29.512"},

	// ---- NRF management (nfm) -------------------------------------------
	{NF: "nrf", Service: "nfm", Slug: "nf_register", Phrase: "NF registration",
		Questions: []string{"NF registration", "network function registration", "NF registrations at the NRF"},
		Message:   "Nnrf_NFManagement_NFRegister", Spec: "section 5.2.2.2 of 3GPP TS 29.510"},
	{NF: "nrf", Service: "nfm", Slug: "nf_update", Phrase: "NF profile update",
		Questions: []string{"NF profile update", "NF update", "network function profile update"},
		Message:   "Nnrf_NFManagement_NFUpdate", Spec: "section 5.2.2.3 of 3GPP TS 29.510"},
	{NF: "nrf", Service: "nfm", Slug: "nf_deregister", Phrase: "NF deregistration",
		Questions: []string{"NF deregistration", "network function deregistration"},
		Message:   "Nnrf_NFManagement_NFDeregister", Spec: "section 5.2.2.4 of 3GPP TS 29.510"},
	{NF: "nrf", Service: "nfm", Slug: "nf_heartbeat", Phrase: "NF heartbeat",
		Questions: []string{"NF heartbeat", "network function heartbeat", "NRF heartbeat"},
		Message:   "Nnrf_NFManagement_NFUpdate (heartbeat)", Spec: "section 5.2.2.3.2 of 3GPP TS 29.510"},
	{NF: "nrf", Service: "nfm", Slug: "nf_status_subscribe", Phrase: "NF status subscription",
		Questions: []string{"NF status subscription", "status subscriptions at the NRF"},
		Message:   "Nnrf_NFManagement_NFStatusSubscribe", Spec: "section 5.2.2.5 of 3GPP TS 29.510"},
	{NF: "nrf", Service: "nfm", Slug: "nf_status_unsubscribe", Phrase: "NF status unsubscription",
		Questions: []string{"NF status unsubscription", "status unsubscriptions at the NRF"},
		Message:   "Nnrf_NFManagement_NFStatusUnsubscribe", Spec: "section 5.2.2.6 of 3GPP TS 29.510"},
	{NF: "nrf", Service: "nfm", Slug: "nf_status_notify", Phrase: "NF status notification",
		Questions: []string{"NF status notification", "status notifications from the NRF"},
		Message:   "Nnrf_NFManagement_NFStatusNotify", Spec: "section 5.2.2.7 of 3GPP TS 29.510"},
	{NF: "nrf", Service: "disc", Slug: "nf_discovery", Phrase: "NF discovery",
		Questions: []string{"NF discovery", "network function discovery", "NF discoveries"},
		Message:   "Nnrf_NFDiscovery_Request", Spec: "section 5.3.2.2 of 3GPP TS 29.510"},
	{NF: "nrf", Service: "disc", Slug: "access_token", Phrase: "OAuth2 access token request",
		Questions: []string{"access token request", "OAuth token request", "OAuth2 access tokens"},
		Message:   "Nnrf_AccessToken_Get", Spec: "section 5.4.2.2 of 3GPP TS 29.510"},

	// ---- NSSF selection (sel) --------------------------------------------
	{NF: "nssf", Service: "sel", Slug: "slice_selection", Phrase: "network slice selection",
		Questions: []string{"network slice selection", "slice selection", "slice selections"},
		Message:   "Nnssf_NSSelection_Get", Spec: "section 5.2.2 of 3GPP TS 29.531"},
	{NF: "nssf", Service: "sel", Slug: "nssai_availability_update", Phrase: "NSSAI availability update",
		Questions: []string{"NSSAI availability update", "slice availability update"},
		Message:   "Nnssf_NSSAIAvailability_Update", Spec: "section 5.3.2 of 3GPP TS 29.531"},
	{NF: "nssf", Service: "sel", Slug: "nssai_availability_subscribe", Phrase: "NSSAI availability subscription",
		Questions: []string{"NSSAI availability subscription", "slice availability subscription"},
		Message:   "Nnssf_NSSAIAvailability_Subscribe", Spec: "section 5.3.2 of 3GPP TS 29.531"},
	{NF: "nssf", Service: "sel", Slug: "nssai_availability_unsubscribe", Phrase: "NSSAI availability unsubscription",
		Questions: []string{"NSSAI availability unsubscription", "slice availability unsubscription"},
		Message:   "Nnssf_NSSAIAvailability_Unsubscribe", Spec: "section 5.3.2 of 3GPP TS 29.531"},
	{NF: "nssf", Service: "sel", Slug: "nssai_availability_notify", Phrase: "NSSAI availability notification",
		Questions: []string{"NSSAI availability notification", "slice availability notification"},
		Message:   "Nnssf_NSSAIAvailability_Notify", Spec: "section 5.3.2 of 3GPP TS 29.531"},

	// ---- N3IWF (ike / ipsec) ----------------------------------------------
	{NF: "n3iwf", Service: "ike", Slug: "sa_init", Phrase: "IKE security association initiation",
		Questions: []string{"IKE SA init", "IKE SA initiation", "IKE security association initiation"},
		Message:   "IKE_SA_INIT", Spec: "section 1.2 of IETF RFC 7296"},
	{NF: "n3iwf", Service: "ike", Slug: "ike_auth", Phrase: "IKE authentication",
		Questions: []string{"IKE authentication", "IKE auth", "IKE_AUTH exchange"},
		Message:   "IKE_AUTH", Spec: "section 1.3 of IETF RFC 7296"},
	{NF: "n3iwf", Service: "ike", Slug: "child_sa_create", Phrase: "child security association creation",
		Questions: []string{"child SA creation", "child security association creation"},
		Message:   "CREATE_CHILD_SA", Spec: "section 1.3 of IETF RFC 7296"},
	{NF: "n3iwf", Service: "ike", Slug: "child_sa_delete", Phrase: "child security association deletion",
		Questions: []string{"child SA deletion", "child security association deletion"},
		Message:   "INFORMATIONAL (DELETE)", Spec: "section 1.4 of IETF RFC 7296"},
	{NF: "n3iwf", Service: "ike", Slug: "eap_5g_auth", Phrase: "EAP-5G authentication",
		Questions: []string{"EAP-5G authentication", "EAP 5G session", "EAP-5G"},
		Message:   "EAP-Request/5G-Start", Spec: "section 7.2A of 3GPP TS 24.502"},
	{NF: "n3iwf", Service: "ike", Slug: "dpd", Phrase: "dead peer detection",
		Questions: []string{"dead peer detection", "DPD", "IKE keepalive"},
		Message:   "INFORMATIONAL", Spec: "section 1.4 of IETF RFC 7296"},
	{NF: "n3iwf", Service: "ipsec", Slug: "tunnel_establishment", Phrase: "IPsec tunnel establishment",
		Questions: []string{"IPsec tunnel establishment", "IPsec tunnel setup"},
		Message:   "CREATE_CHILD_SA", Spec: "section 1.3 of IETF RFC 7296"},
	{NF: "n3iwf", Service: "ipsec", Slug: "tunnel_release", Phrase: "IPsec tunnel release",
		Questions: []string{"IPsec tunnel release", "IPsec tunnel teardown"},
		Message:   "INFORMATIONAL (DELETE)", Spec: "section 1.4 of IETF RFC 7296"},
	{NF: "n3iwf", Service: "ipsec", Slug: "untrusted_registration", Phrase: "registration over untrusted non-3GPP access",
		Questions: []string{"registration over untrusted access", "untrusted non-3GPP registration", "non-3GPP registration"},
		Message:   "REGISTRATION REQUEST (via NWu)", Spec: "section 7.2 of 3GPP TS 24.502"},
	{NF: "n3iwf", Service: "ipsec", Slug: "untrusted_pdu_session", Phrase: "PDU session over untrusted non-3GPP access",
		Questions: []string{"PDU session over untrusted access", "non-3GPP PDU session"},
		Message:   "PDU SESSION ESTABLISHMENT REQUEST (via NWu)", Spec: "section 7.5 of 3GPP TS 24.502"},

	// ---- UPF (sess / gtp) ---------------------------------------------------
	{NF: "upf", Service: "sess", Slug: "session_establishment", Phrase: "PFCP session establishment",
		Questions: []string{"UPF session establishment", "PFCP session establishment at the UPF"},
		Message:   "PFCP SESSION ESTABLISHMENT REQUEST", Spec: "section 7.5.2 of 3GPP TS 29.244"},
	{NF: "upf", Service: "sess", Slug: "session_modification", Phrase: "PFCP session modification",
		Questions: []string{"UPF session modification", "PFCP session modification at the UPF"},
		Message:   "PFCP SESSION MODIFICATION REQUEST", Spec: "section 7.5.4 of 3GPP TS 29.244"},
	{NF: "upf", Service: "sess", Slug: "session_deletion", Phrase: "PFCP session deletion",
		Questions: []string{"UPF session deletion", "PFCP session deletion at the UPF"},
		Message:   "PFCP SESSION DELETION REQUEST", Spec: "section 7.5.6 of 3GPP TS 29.244"},
	{NF: "upf", Service: "sess", Slug: "pdr_install", Phrase: "packet detection rule installation",
		Questions: []string{"PDR installation", "packet detection rule installation"},
		Message:   "PFCP SESSION ESTABLISHMENT REQUEST (Create PDR)", Spec: "section 7.5.2.2 of 3GPP TS 29.244"},
	{NF: "upf", Service: "sess", Slug: "far_install", Phrase: "forwarding action rule installation",
		Questions: []string{"FAR installation", "forwarding action rule installation"},
		Message:   "PFCP SESSION ESTABLISHMENT REQUEST (Create FAR)", Spec: "section 7.5.2.3 of 3GPP TS 29.244"},
	{NF: "upf", Service: "sess", Slug: "qer_install", Phrase: "QoS enforcement rule installation",
		Questions: []string{"QER installation", "QoS enforcement rule installation"},
		Message:   "PFCP SESSION ESTABLISHMENT REQUEST (Create QER)", Spec: "section 7.5.2.5 of 3GPP TS 29.244"},
	{NF: "upf", Service: "sess", Slug: "urr_report", Phrase: "usage reporting rule report",
		Questions: []string{"URR report", "usage report", "usage reporting"},
		Message:   "PFCP SESSION REPORT REQUEST", Spec: "section 7.5.8 of 3GPP TS 29.244"},
	{NF: "upf", Service: "sess", Slug: "dl_data_notification", Phrase: "downlink data notification",
		Questions: []string{"downlink data notification", "DL data notification"},
		Message:   "PFCP SESSION REPORT REQUEST (DLDR)", Spec: "section 7.5.8.2 of 3GPP TS 29.244"},
	{NF: "upf", Service: "gtp", Slug: "tunnel_create", Phrase: "GTP-U tunnel creation",
		Questions: []string{"GTP-U tunnel creation", "GTP tunnel creation", "tunnel creations at the UPF"},
		Message:   "GTP-U G-PDU", Spec: "section 7.3 of 3GPP TS 29.281"},
	{NF: "upf", Service: "gtp", Slug: "tunnel_delete", Phrase: "GTP-U tunnel deletion",
		Questions: []string{"GTP-U tunnel deletion", "GTP tunnel deletion", "tunnel deletions at the UPF"},
		Message:   "GTP-U G-PDU", Spec: "section 7.3 of 3GPP TS 29.281"},
	{NF: "upf", Service: "gtp", Slug: "echo", Phrase: "GTP-U echo",
		Questions: []string{"GTP-U echo", "GTP echo", "GTP-U path management echo"},
		Message:   "GTP-U ECHO REQUEST", Spec: "section 7.2.1 of 3GPP TS 29.281"},
	{NF: "upf", Service: "gtp", Slug: "error_indication", Phrase: "GTP-U error indication",
		Questions: []string{"GTP-U error indication", "GTP error indications"},
		Message:   "GTP-U ERROR INDICATION", Spec: "section 7.3.1 of 3GPP TS 29.281"},
}

// Procedures returns the procedure table (shared slice; callers must not
// modify it).
func Procedures() []ProcedureDef { return procedures }

// GaugeDef describes a point-in-time level metric.
type GaugeDef struct {
	NF, Service, Slug string
	// Phrase is the documented quantity ("active PDU sessions").
	Phrase string
	// Questions are operator phrasings.
	Questions []string
	Unit      string
}

// MetricName returns the gauge's metric name.
func (g GaugeDef) MetricName() string { return g.NF + g.Service + "_" + g.Slug }

var gauges = []GaugeDef{
	{NF: "amf", Service: "cc", Slug: "registered_ues", Phrase: "currently registered UEs",
		Questions: []string{"registered UEs", "registered subscribers", "how many UEs are registered"}},
	{NF: "amf", Service: "cc", Slug: "connected_ues", Phrase: "UEs in CM-CONNECTED state",
		Questions: []string{"connected UEs", "UEs in connected state"}},
	{NF: "amf", Service: "cc", Slug: "idle_ues", Phrase: "UEs in CM-IDLE state",
		Questions: []string{"idle UEs", "UEs in idle state"}},
	{NF: "amf", Service: "mm", Slug: "connected_gnbs", Phrase: "gNodeBs with an active NG connection",
		Questions: []string{"connected gNodeBs", "connected gNBs", "base stations connected"}},
	{NF: "amf", Service: "mm", Slug: "active_paging", Phrase: "paging procedures in progress",
		Questions: []string{"active paging procedures", "ongoing paging"}},
	{NF: "amf", Service: "cc", Slug: "ue_contexts", Phrase: "stored UE contexts",
		Questions: []string{"UE contexts", "stored UE contexts"}},
	{NF: "amf", Service: "ee", Slug: "active_subscriptions", Phrase: "active event exposure subscriptions",
		Questions: []string{"active event subscriptions", "event exposure subscriptions"}},
	{NF: "smf", Service: "sm", Slug: "pdu_sessions_active", Phrase: "currently active PDU sessions",
		Questions: []string{"active PDU sessions", "PDU sessions", "how many PDU sessions are active"}},
	{NF: "smf", Service: "sm", Slug: "ipv4_allocated", Phrase: "allocated IPv4 addresses",
		Questions: []string{"allocated IPv4 addresses", "IPv4 addresses in use"}},
	{NF: "smf", Service: "sm", Slug: "ipv6_allocated", Phrase: "allocated IPv6 prefixes",
		Questions: []string{"allocated IPv6 prefixes", "IPv6 prefixes in use"}},
	{NF: "smf", Service: "sm", Slug: "qos_flows_active", Phrase: "active QoS flows",
		Questions: []string{"active QoS flows", "QoS flows"}},
	{NF: "smf", Service: "sm", Slug: "sm_contexts", Phrase: "stored SM contexts",
		Questions: []string{"SM contexts", "session management contexts"}},
	{NF: "smf", Service: "n4", Slug: "associations_active", Phrase: "active N4 associations",
		Questions: []string{"active N4 associations", "PFCP associations"}},
	{NF: "nrf", Service: "nfm", Slug: "registered_nfs", Phrase: "registered NF instances",
		Questions: []string{"registered NF instances", "registered network functions"}},
	{NF: "nrf", Service: "nfm", Slug: "active_subscriptions", Phrase: "active status subscriptions",
		Questions: []string{"active NRF subscriptions", "status subscriptions"}},
	{NF: "nssf", Service: "sel", Slug: "configured_slices", Phrase: "configured network slices",
		Questions: []string{"configured slices", "configured network slices"}},
	{NF: "nssf", Service: "sel", Slug: "available_slices", Phrase: "currently available network slices",
		Questions: []string{"available slices", "available network slices"}},
	{NF: "n3iwf", Service: "ike", Slug: "active_ike_sas", Phrase: "established IKE security associations",
		Questions: []string{"active IKE SAs", "established IKE security associations"}},
	{NF: "n3iwf", Service: "ipsec", Slug: "active_tunnels", Phrase: "established IPsec tunnels",
		Questions: []string{"active IPsec tunnels", "established IPsec tunnels"}},
	{NF: "n3iwf", Service: "ipsec", Slug: "connected_ues", Phrase: "UEs connected over untrusted non-3GPP access",
		Questions: []string{"UEs on untrusted access", "non-3GPP connected UEs"}},
	{NF: "upf", Service: "sess", Slug: "sessions_active", Phrase: "active PFCP sessions",
		Questions: []string{"active UPF sessions", "active PFCP sessions"}},
	{NF: "upf", Service: "gtp", Slug: "tunnels_active", Phrase: "active GTP-U tunnels",
		Questions: []string{"active GTP-U tunnels", "active GTP tunnels"}},
	{NF: "upf", Service: "sess", Slug: "buffered_packets", Phrase: "packets currently buffered for paging",
		Questions: []string{"buffered packets", "packets buffered at the UPF"}},
	{NF: "upf", Service: "sess", Slug: "installed_pdrs", Phrase: "installed packet detection rules",
		Questions: []string{"installed PDRs", "packet detection rules installed"}},
	{NF: "upf", Service: "sess", Slug: "installed_fars", Phrase: "installed forwarding action rules",
		Questions: []string{"installed FARs", "forwarding action rules installed"}},
	{NF: "upf", Service: "sess", Slug: "installed_qers", Phrase: "installed QoS enforcement rules",
		Questions: []string{"installed QERs", "QoS enforcement rules installed"}},
}

// Gauges returns the gauge table.
func Gauges() []GaugeDef { return gauges }

// MessageDef describes a protocol message instrumented with tx/rx/error
// counters.
type MessageDef struct {
	NF, Service string
	// Slug is the name fragment, Phrase the documented message name.
	Slug, Phrase string
	Spec         string
}

// messagesCompact expands to the message table: per NF/service/spec, a list
// of message slugs (phrase derived by replacing underscores).
var messagesCompact = []struct {
	nf, service, spec string
	slugs             []string
}{
	{"amf", "n1", "3GPP TS 24.501", []string{
		"registration_request", "registration_accept", "registration_complete",
		"registration_reject", "deregistration_request", "deregistration_accept",
		"service_request", "service_accept", "service_reject",
		"authentication_request", "authentication_response", "authentication_reject",
		"authentication_failure", "security_mode_command", "security_mode_complete",
		"security_mode_reject", "identity_request", "identity_response",
		"configuration_update_command", "configuration_update_complete",
		"ul_nas_transport", "dl_nas_transport", "gmm_status", "notification",
		"notification_response",
	}},
	{"amf", "n2", "3GPP TS 38.413", []string{
		"ng_setup_request", "ng_setup_response", "ng_setup_failure",
		"initial_ue_message", "downlink_nas_transport", "uplink_nas_transport",
		"initial_context_setup_request", "initial_context_setup_response",
		"initial_context_setup_failure", "ue_context_release_request",
		"ue_context_release_command", "ue_context_release_complete",
		"handover_required", "handover_request", "handover_request_ack",
		"handover_command", "handover_notify", "handover_failure",
		"path_switch_request", "path_switch_request_ack", "paging",
		"pdu_session_resource_setup_request", "pdu_session_resource_setup_response",
		"pdu_session_resource_release_command", "pdu_session_resource_release_response",
		"error_indication",
	}},
	{"smf", "sbi", "3GPP TS 29.502", []string{
		"create_sm_context_request", "create_sm_context_response",
		"update_sm_context_request", "update_sm_context_response",
		"release_sm_context_request", "release_sm_context_response",
		"sm_context_status_notify", "retrieve_sm_context_request",
		"notify_status_request", "notify_status_response",
	}},
	{"smf", "n4", "3GPP TS 29.244", []string{
		"session_establishment_request", "session_establishment_response",
		"session_modification_request", "session_modification_response",
		"session_deletion_request", "session_deletion_response",
		"session_report_request", "session_report_response",
		"association_setup_request", "association_setup_response",
		"heartbeat_request", "heartbeat_response",
	}},
	{"nrf", "sbi", "3GPP TS 29.510", []string{
		"nf_register_request", "nf_register_response", "nf_update_request",
		"nf_update_response", "nf_deregister_request", "nf_deregister_response",
		"nf_discovery_request", "nf_discovery_response",
		"status_subscribe_request", "status_notify_request",
		"access_token_request", "access_token_response",
	}},
	{"nssf", "sbi", "3GPP TS 29.531", []string{
		"ns_selection_get_request", "ns_selection_get_response",
		"nssai_availability_put_request", "nssai_availability_put_response",
		"nssai_availability_notify",
	}},
	{"n3iwf", "ike", "IETF RFC 7296", []string{
		"ike_sa_init_request", "ike_sa_init_response", "ike_auth_request",
		"ike_auth_response", "create_child_sa_request", "create_child_sa_response",
		"informational_request", "informational_response",
		"eap_5g_start", "eap_5g_nas", "eap_5g_stop",
	}},
	{"upf", "n4", "3GPP TS 29.244", []string{
		"session_establishment_request", "session_establishment_response",
		"session_modification_request", "session_modification_response",
		"session_deletion_request", "session_deletion_response",
		"session_report_request", "session_report_response",
		"heartbeat_request", "heartbeat_response",
	}},
	{"upf", "gtpu", "3GPP TS 29.281", []string{
		"g_pdu", "echo_request", "echo_response", "error_indication",
		"end_marker",
	}},
}

// ResourceDef describes a per-NF platform resource metric.
type ResourceDef struct {
	Slug, Phrase, Unit string
	Type               MetricType
}

// resources is exported once per NF.
var resources = []ResourceDef{
	{Slug: "cpu_usage_percent", Phrase: "CPU utilisation of the NF workload", Unit: "percent", Type: Gauge},
	{Slug: "memory_bytes", Phrase: "resident memory of the NF workload", Unit: "bytes", Type: Gauge},
	{Slug: "heap_bytes", Phrase: "heap memory in use", Unit: "bytes", Type: Gauge},
	{Slug: "goroutines", Phrase: "concurrent execution contexts", Unit: "", Type: Gauge},
	{Slug: "open_fds", Phrase: "open file descriptors", Unit: "", Type: Gauge},
	{Slug: "uptime_seconds", Phrase: "seconds since the NF process started", Unit: "seconds", Type: Counter},
	{Slug: "restarts", Phrase: "times the NF workload restarted", Unit: "", Type: Counter},
	{Slug: "sbi_inflight_requests", Phrase: "in-flight service-based-interface requests", Unit: "", Type: Gauge},
	{Slug: "sbi_request_errors", Phrase: "failed service-based-interface requests", Unit: "", Type: Counter},
	{Slug: "db_connections", Phrase: "open connections to the state database", Unit: "", Type: Gauge},
	{Slug: "queue_depth", Phrase: "pending items in the internal work queue", Unit: "", Type: Gauge},
	{Slug: "dropped_events", Phrase: "internal events dropped under overload", Unit: "", Type: Counter},
	{Slug: "log_errors", Phrase: "error-level log records emitted", Unit: "", Type: Counter},
	{Slug: "config_reloads", Phrase: "configuration reloads applied", Unit: "", Type: Counter},
}

// TrafficDef describes a UPF per-interface traffic metric.
type TrafficDef struct {
	Interface string // n3, n6, n9
	Direction string // ul, dl
	Kind      string // bytes, packets, dropped_packets, ...
	Unit      string
}

var trafficInterfaces = []string{"n3", "n6", "n9"}
var trafficDirections = []string{"ul", "dl"}
var trafficKinds = []struct{ kind, unit, phrase string }{
	{"bytes", "bytes", "bytes forwarded"},
	{"packets", "packets", "packets forwarded"},
	{"dropped_packets", "packets", "packets dropped"},
	{"errored_packets", "packets", "packets with processing errors"},
	{"out_of_order_packets", "packets", "packets received out of order"},
}
