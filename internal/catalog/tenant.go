package catalog

import (
	"sort"

	"dio/internal/tenant"
)

// This file adds tenant-scoped overlays to the domain-specific database:
// every tenant shares the vendor-shipped base corpus, while expert
// contributions made on behalf of a tenant land in that tenant's overlay —
// visible only to its own lookups, with an independent version counter so
// serving-layer caches invalidate per tenant instead of globally.
// Contributions for tenant.Default keep the pre-tenancy behaviour: they go
// straight into the shared base database.

// tenantOverlay is one tenant's private delta over the base database.
// Guarded by the database mutex.
type tenantOverlay struct {
	metrics   map[string]*Metric
	functions []*FunctionDef
	version   uint64
}

// overlayLocked returns (creating if needed) a tenant's overlay. Callers
// hold the write lock.
func (db *Database) overlayLocked(id string) *tenantOverlay {
	if db.overlays == nil {
		db.overlays = make(map[string]*tenantOverlay)
	}
	ov, ok := db.overlays[id]
	if !ok {
		ov = &tenantOverlay{metrics: make(map[string]*Metric)}
		db.overlays[id] = ov
		db.noverlays.Add(1)
	}
	return ov
}

// TenantVersion returns the monotonic contribution counter a tenant's
// cached answers must key on: the shared base version plus the tenant's
// overlay version. A base contribution invalidates everyone; a
// tenant-scoped one invalidates that tenant alone.
func (db *Database) TenantVersion(id string) uint64 {
	base := db.version.Load()
	// Lock-free fast path: with no overlays anywhere (the common serving
	// state) every tenant keys on the base version. This keeps the
	// per-request version probe off the database mutex entirely.
	if id == tenant.Default || db.noverlays.Load() == 0 {
		return base
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if ov, ok := db.overlays[id]; ok {
		return base + ov.version
	}
	return base
}

// LookupTenant returns the metric a tenant sees under name: its overlay
// entry when one exists, the shared base entry otherwise.
func (db *Database) LookupTenant(id, name string) (*Metric, bool) {
	if id == tenant.Default {
		return db.Lookup(name)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if ov, ok := db.overlays[id]; ok {
		if m, ok := ov.metrics[name]; ok {
			return m, true
		}
	}
	m, ok := db.byName[name]
	return m, ok
}

// AddTenantMetricDoc records expert-contributed documentation on behalf of
// a tenant. The default tenant writes to the shared base database
// (identical to AddExpertMetricDoc); any other tenant gets a
// copy-on-write overlay entry layered over the base metric, and only that
// tenant's overlay version is bumped.
func (db *Database) AddTenantMetricDoc(id, name, description, expert string) *Metric {
	if id == tenant.Default {
		return db.AddExpertMetricDoc(name, description, expert)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ov := db.overlayLocked(id)
	ov.version++
	base := ov.metrics[name]
	if base == nil {
		base = db.byName[name]
	}
	if base != nil {
		m := new(Metric)
		*m = *base
		m.Description = description + " (Expert note by " + expert + ".) " + base.Description
		m.Expert = expert
		ov.metrics[name] = m
		return m
	}
	m := &Metric{Name: name, Description: description, Expert: expert, Type: Counter}
	ov.metrics[name] = m
	return m
}

// AddTenantFunction registers a bespoke function contributed on behalf of
// a tenant: shared for the default tenant, overlay-private otherwise.
func (db *Database) AddTenantFunction(id string, f *FunctionDef) {
	if id == tenant.Default {
		db.AddFunction(f)
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ov := db.overlayLocked(id)
	ov.functions = append(ov.functions, f)
	ov.version++
}

// FunctionsSnapshotTenant returns the bespoke functions a tenant sees:
// the shared base set followed by its overlay's private additions.
func (db *Database) FunctionsSnapshotTenant(id string) []*FunctionDef {
	if id == tenant.Default {
		return db.FunctionsSnapshot()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := append([]*FunctionDef(nil), db.Functions...)
	if ov, ok := db.overlays[id]; ok {
		out = append(out, ov.functions...)
	}
	return out
}

// TenantOverlayStats reports a tenant's overlay size (docs and functions)
// and version; zeros for tenants without an overlay.
func (db *Database) TenantOverlayStats(id string) (metrics, functions int, version uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if ov, ok := db.overlays[id]; ok {
		return len(ov.metrics), len(ov.functions), ov.version
	}
	return 0, 0, 0
}

// OverlayTenants returns the tenants with overlays, sorted (introspection
// and tests).
func (db *Database) OverlayTenants() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.overlays))
	for id := range db.overlays {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
