package catalog

import (
	"strings"
	"sync"
	"testing"

	"dio/internal/tenant"
)

func overlayTestDB() *Database {
	return NewDatabase([]*Metric{
		{Name: "amfcc_n1_auth_request", NF: "amf", Service: "cc", Procedure: "authentication", Variant: "request", Type: Counter, Description: "The number of authentication requests sent by AMF."},
		{Name: "smfpdu_n4_session_est", NF: "smf", Service: "pdu", Procedure: "session-establishment", Variant: "request", Type: Counter, Description: "The number of PDU session establishment requests."},
	}, []*FunctionDef{
		{Name: "rate_of", Description: "Per-second rate.", Inputs: "one counter", Outputs: "rate", Template: "rate(%s[5m])", Arity: 1},
	})
}

func TestTenantOverlayIsolation(t *testing.T) {
	db := overlayTestDB()
	base, _ := db.Lookup("amfcc_n1_auth_request")

	m := db.AddTenantMetricDoc("acme", "amfcc_n1_auth_request", "Acme counts retries too.", "acme-noc")
	if !strings.HasPrefix(m.Description, "Acme counts retries too. (Expert note by acme-noc.) ") {
		t.Fatalf("overlay description = %q", m.Description)
	}

	// Acme sees its overlay entry; everyone else still sees the base entry.
	got, ok := db.LookupTenant("acme", "amfcc_n1_auth_request")
	if !ok || got != m {
		t.Fatalf("acme lookup = %v, want overlay entry", got)
	}
	if got, _ := db.LookupTenant("umbrella", "amfcc_n1_auth_request"); got != base {
		t.Fatal("another tenant observed acme's overlay")
	}
	if got, _ := db.Lookup("amfcc_n1_auth_request"); got != base {
		t.Fatal("base database mutated by tenant contribution")
	}
	if got, _ := db.LookupTenant(tenant.Default, "amfcc_n1_auth_request"); got != base {
		t.Fatal("default tenant observed acme's overlay")
	}

	// Metrics without an overlay entry fall through to the base.
	if got, ok := db.LookupTenant("acme", "smfpdu_n4_session_est"); !ok || got.NF != "smf" {
		t.Fatalf("acme base fall-through = %v ok=%v", got, ok)
	}
}

func TestTenantOverlayVersionCounters(t *testing.T) {
	db := overlayTestDB()
	v0 := db.Version()
	if db.TenantVersion("acme") != v0 || db.TenantVersion(tenant.Default) != v0 {
		t.Fatal("fresh tenants must report the base version")
	}

	db.AddTenantMetricDoc("acme", "amfcc_n1_auth_request", "note", "x")
	if db.Version() != v0 {
		t.Fatal("tenant contribution bumped the shared base version")
	}
	if db.TenantVersion("acme") != v0+1 {
		t.Fatalf("acme version = %d, want %d", db.TenantVersion("acme"), v0+1)
	}
	if db.TenantVersion("umbrella") != v0 {
		t.Fatal("acme contribution bumped another tenant's version")
	}

	// A default-tenant (shared) contribution bumps everyone.
	db.AddTenantMetricDoc(tenant.Default, "smfpdu_n4_session_est", "shared note", "y")
	if db.Version() != v0+1 {
		t.Fatalf("base version = %d, want %d", db.Version(), v0+1)
	}
	if db.TenantVersion("acme") != v0+2 || db.TenantVersion("umbrella") != v0+1 {
		t.Fatalf("versions acme=%d umbrella=%d", db.TenantVersion("acme"), db.TenantVersion("umbrella"))
	}
}

func TestTenantOverlayFunctions(t *testing.T) {
	db := overlayTestDB()
	nbase := len(db.FunctionsSnapshot())

	db.AddTenantFunction("acme", &FunctionDef{Name: "acme_ratio", Description: "Acme-private ratio.", Template: "%s/%s", Arity: 2})
	if got := len(db.FunctionsSnapshotTenant("acme")); got != nbase+1 {
		t.Fatalf("acme functions = %d, want %d", got, nbase+1)
	}
	if got := len(db.FunctionsSnapshotTenant("umbrella")); got != nbase {
		t.Fatalf("umbrella sees %d functions, want %d (acme's private function leaked)", got, nbase)
	}
	if got := len(db.FunctionsSnapshot()); got != nbase {
		t.Fatal("tenant function landed in the shared base set")
	}
	if _, ok := db.LookupFunction("acme_ratio"); ok {
		t.Fatal("tenant-private function visible through the shared lookup")
	}

	// Default-tenant functions go to the shared base, as before tenancy.
	db.AddTenantFunction(tenant.Default, &FunctionDef{Name: "shared_fn", Template: "%s", Arity: 1})
	if _, ok := db.LookupFunction("shared_fn"); !ok {
		t.Fatal("default-tenant function missing from the shared base")
	}
	if got := len(db.FunctionsSnapshotTenant("acme")); got != nbase+2 {
		t.Fatalf("acme must see shared+private functions, got %d", got)
	}
}

func TestTenantOverlayNewMetricAndStats(t *testing.T) {
	db := overlayTestDB()
	db.AddTenantMetricDoc("acme", "acme_custom_counter", "A counter only acme exports.", "acme-noc")
	if _, ok := db.Lookup("acme_custom_counter"); ok {
		t.Fatal("tenant-private metric visible in base lookups")
	}
	if m, ok := db.LookupTenant("acme", "acme_custom_counter"); !ok || m.Expert != "acme-noc" {
		t.Fatalf("acme private metric = %v ok=%v", m, ok)
	}
	// Stacking a second note layers over the overlay entry, not the base.
	db.AddTenantMetricDoc("acme", "acme_custom_counter", "Second note.", "acme-sre")
	m, _ := db.LookupTenant("acme", "acme_custom_counter")
	if !strings.Contains(m.Description, "A counter only acme exports.") || !strings.HasPrefix(m.Description, "Second note.") {
		t.Fatalf("stacked overlay description = %q", m.Description)
	}
	metrics, functions, version := db.TenantOverlayStats("acme")
	if metrics != 1 || functions != 0 || version != 2 {
		t.Fatalf("overlay stats = (%d,%d,%d), want (1,0,2)", metrics, functions, version)
	}
	if got := db.OverlayTenants(); len(got) != 1 || got[0] != "acme" {
		t.Fatalf("OverlayTenants = %v", got)
	}
}

func TestTenantOverlayConcurrent(t *testing.T) {
	db := overlayTestDB()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := []string{"a", "b", "c", tenant.Default}
			for i := 0; i < 200; i++ {
				id := ids[(w+i)%len(ids)]
				db.AddTenantMetricDoc(id, "amfcc_n1_auth_request", "note", "e")
				db.LookupTenant(id, "amfcc_n1_auth_request")
				db.TenantVersion(id)
				db.FunctionsSnapshotTenant(id)
			}
		}(w)
	}
	wg.Wait()
}
