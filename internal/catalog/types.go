// Package catalog implements the domain-specific database of the paper
// (§3.1): the corpus of specialized operator metrics — names, detailed
// documentation and bespoke function definitions — produced by a virtual
// network function provider for a 5G core. The vendor documentation is
// proprietary, so this package *generates* a synthetic yet representative
// catalog of the same shape: >3000 counters, gauges and histograms across
// AMF, SMF, NRF, N3IWF, NSSF and UPF, each with a documentation sentence
// modelled on the paper's example ("The number of authentication requests
// sent by AMF. The AUTHENTICATION REQUEST message is defined in section
// 8.2.1 of 3GPP TS 24.501. 64-bit counter.").
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType classifies how a metric's samples behave.
type MetricType int

// Metric types.
const (
	Counter MetricType = iota
	Gauge
	HistogramBucket
	HistogramSum
	HistogramCount
)

// String names the metric type as it appears in documentation.
func (t MetricType) String() string {
	switch t {
	case Counter:
		return "64-bit counter"
	case Gauge:
		return "gauge"
	case HistogramBucket:
		return "cumulative histogram bucket counter"
	case HistogramSum:
		return "histogram sum counter"
	case HistogramCount:
		return "histogram count counter"
	}
	return "unknown"
}

// Metric is one catalog entry: a metric the vNF provider exports, with its
// full documentation text.
type Metric struct {
	// Name is the exported metric name, e.g. "amfcc_n1_auth_request".
	Name string
	// NF is the network function that produces it: amf, smf, nrf, n3iwf,
	// nssf or upf.
	NF string
	// Service is the NF-internal service, e.g. "cc" (call control).
	Service string
	// Procedure is the slug of the 3GPP procedure the metric belongs to
	// ("" for gauges and resource metrics not tied to a procedure).
	Procedure string
	// Variant distinguishes the counters of one procedure: request,
	// attempt, success, failure, timeout, ... or a failure/reject cause.
	Variant string
	// Type is the sample behaviour.
	Type MetricType
	// Unit is the measured unit ("", "bytes", "packets", "seconds", ...).
	Unit string
	// Description is the full vendor documentation sentence(s).
	Description string
	// Labels are the label dimensions the metric is exported with
	// (instance is implicit on everything).
	Labels []string
	// Expert attributes entries contributed through the feedback loop
	// (empty for vendor-shipped documentation).
	Expert string
}

// Doc returns the documentation text sample for the metric as segmented
// into the domain-specific database: name plus description.
func (m *Metric) Doc() string {
	return m.Name + ": " + m.Description
}

// FunctionDef is a bespoke, specialist-crafted function stored in the
// domain-specific database (§3.1): a named PromQL recipe with a
// description of inputs and outputs.
type FunctionDef struct {
	// Name identifies the function, e.g. "procedure_success_rate".
	Name string
	// Description explains what the function computes.
	Description string
	// Inputs documents the expected arguments.
	Inputs string
	// Outputs documents the produced value.
	Outputs string
	// Template is the executable PromQL with %s placeholders for the
	// input metric names.
	Template string
	// Arity is the number of metric-name arguments Template expects.
	Arity int
	// Author is the contributing expert (attribution, §3.4).
	Author string
}

// Doc returns the documentation text sample for the function.
func (f *FunctionDef) Doc() string {
	return "function " + f.Name + ": " + f.Description + " Inputs: " + f.Inputs + " Outputs: " + f.Outputs
}

// Expand instantiates the function template with metric names.
func (f *FunctionDef) Expand(metrics ...string) (string, error) {
	if len(metrics) != f.Arity {
		return "", fmt.Errorf("catalog: function %s expects %d metrics, got %d", f.Name, f.Arity, len(metrics))
	}
	args := make([]any, len(metrics))
	for i, m := range metrics {
		args[i] = m
	}
	return fmt.Sprintf(f.Template, args...), nil
}

// Document is one text sample of the domain-specific database: the unit of
// embedding and retrieval.
type Document struct {
	// ID is the metric name or "function:<name>".
	ID string
	// Text is the embedded content.
	Text string
	// Metric points back to the catalog entry (nil for function docs).
	Metric *Metric
	// Function points back to the function definition (nil for metrics).
	Function *FunctionDef
}

// Database is the assembled domain-specific database. Construction-time
// code (generators, vendor translators, simulators) may read the exported
// slices directly; once the database serves live traffic alongside the
// feedback loop, concurrent access must go through the methods, which
// synchronise with runtime contributions. Published *Metric values are
// immutable: contributions replace entries copy-on-write, so a reader
// holding a pointer never observes a mutation.
type Database struct {
	Metrics   []*Metric
	Functions []*FunctionDef

	mu       sync.RWMutex
	byName   map[string]*Metric
	byProc   map[string][]*Metric
	funcByID map[string]*FunctionDef

	// overlays holds per-tenant deltas over the shared base corpus (see
	// tenant.go). Lazily created; nil until the first tenant contribution.
	// noverlays mirrors len(overlays) so TenantVersion's hot path can
	// skip the mutex while no overlays exist.
	overlays  map[string]*tenantOverlay
	noverlays atomic.Uint64

	// version counts contributions. Serving-layer cache keys fold it in,
	// so every expert contribution invalidates cached answers instantly.
	version atomic.Uint64
}

// NewDatabase assembles a database from metrics and functions.
func NewDatabase(metrics []*Metric, functions []*FunctionDef) *Database {
	db := &Database{
		Metrics:   metrics,
		Functions: functions,
		byName:    make(map[string]*Metric, len(metrics)),
		byProc:    make(map[string][]*Metric),
		funcByID:  make(map[string]*FunctionDef, len(functions)),
	}
	for _, m := range metrics {
		db.byName[m.Name] = m
		if m.Procedure != "" {
			key := m.NF + "/" + m.Service + "/" + m.Procedure
			db.byProc[key] = append(db.byProc[key], m)
		}
	}
	for _, f := range functions {
		db.funcByID[f.Name] = f
	}
	return db
}

// Version returns the monotonic contribution counter. Serving-layer
// caches key on it: any expert contribution bumps it, making every cached
// answer derived from the old database unaddressable.
func (db *Database) Version() uint64 { return db.version.Load() }

// Lookup returns the metric with the given name.
func (db *Database) Lookup(name string) (*Metric, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m, ok := db.byName[name]
	return m, ok
}

// LookupFunction returns the bespoke function with the given name.
func (db *Database) LookupFunction(name string) (*FunctionDef, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f, ok := db.funcByID[name]
	return f, ok
}

// ProcedureMetrics returns the metrics of one procedure.
func (db *Database) ProcedureMetrics(nf, service, proc string) []*Metric {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.byProc[nf+"/"+service+"/"+proc]
}

// MetricNames returns all metric names, sorted.
func (db *Database) MetricNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.Metrics))
	for _, m := range db.Metrics {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}

// MetricsSnapshot returns the current metric entries. The returned slice
// is the caller's; the pointed-to metrics are immutable.
func (db *Database) MetricsSnapshot() []*Metric {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]*Metric(nil), db.Metrics...)
}

// FunctionsSnapshot returns the current bespoke function definitions.
func (db *Database) FunctionsSnapshot() []*FunctionDef {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]*FunctionDef(nil), db.Functions...)
}

// Documents segments the database into text samples: one per metric plus
// one per bespoke function, the corpus the context extractor indexes.
func (db *Database) Documents() []Document {
	db.mu.RLock()
	defer db.mu.RUnlock()
	docs := make([]Document, 0, len(db.Metrics)+len(db.Functions))
	for _, m := range db.Metrics {
		docs = append(docs, Document{ID: m.Name, Text: m.Doc(), Metric: m})
	}
	for _, f := range db.Functions {
		docs = append(docs, Document{ID: "function:" + f.Name, Text: f.Doc(), Function: f})
	}
	return docs
}

// AddExpertMetricDoc appends (or overrides) expert-contributed
// documentation for a metric, attributed to the expert (the feedback loop
// of §3.4 grows the database through this). Existing entries are replaced
// copy-on-write, so concurrent readers holding the old *Metric keep a
// consistent view; the database version is bumped either way.
func (db *Database) AddExpertMetricDoc(name, description, expert string) *Metric {
	db.mu.Lock()
	defer db.mu.Unlock()
	defer db.version.Add(1)
	if old, ok := db.byName[name]; ok {
		// Expert notes lead the description: they carry the operator
		// jargon that vendor text lacks, and retrieval and prompt
		// clipping both weight the leading sentence.
		m := new(Metric)
		*m = *old
		m.Description = description + " (Expert note by " + expert + ".) " + old.Description
		m.Expert = expert
		db.replaceLocked(old, m)
		return m
	}
	m := &Metric{Name: name, Description: description, Expert: expert, Type: Counter}
	db.Metrics = append(db.Metrics, m)
	db.byName[name] = m
	return m
}

// replaceLocked swaps old for m in every index. Callers must hold the
// write lock.
func (db *Database) replaceLocked(old, m *Metric) {
	db.byName[m.Name] = m
	for i, em := range db.Metrics {
		if em == old {
			db.Metrics[i] = m
			break
		}
	}
	if m.Procedure != "" {
		// Replace, never mutate, the procedure list: ProcedureMetrics hands
		// the stored slice to readers, so its backing array must stay
		// stable once published.
		key := m.NF + "/" + m.Service + "/" + m.Procedure
		lst := append([]*Metric(nil), db.byProc[key]...)
		for i, em := range lst {
			if em == old {
				lst[i] = m
				break
			}
		}
		db.byProc[key] = lst
	}
}

// AddFunction registers a bespoke function contributed at runtime (the
// feedback loop), keeping the lookup index consistent and bumping the
// database version.
func (db *Database) AddFunction(f *FunctionDef) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.Functions = append(db.Functions, f)
	db.funcByID[f.Name] = f
	db.version.Add(1)
}

// NFLongNames maps NF short names to their full 3GPP names (used in
// documentation sentences and by the lexicon).
var NFLongNames = map[string]string{
	"amf":   "Access and Mobility Management Function",
	"smf":   "Session Management Function",
	"nrf":   "NF Repository Function",
	"n3iwf": "Non-3GPP Inter-Working Function",
	"nssf":  "Network Slice Selection Function",
	"upf":   "User Plane Function",
}

// NFNames returns the NF short names in canonical order.
func NFNames() []string { return []string{"amf", "smf", "nrf", "n3iwf", "nssf", "upf"} }

// Stats summarises the catalog for the §4 setup checks.
type Stats struct {
	Metrics    int
	Counters   int
	Gauges     int
	Histograms int
	Functions  int
	PerNF      map[string]int
}

// Stats computes catalog statistics.
func (db *Database) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{PerNF: make(map[string]int), Functions: len(db.Functions)}
	for _, m := range db.Metrics {
		s.Metrics++
		s.PerNF[m.NF]++
		switch m.Type {
		case Counter:
			s.Counters++
		case Gauge:
			s.Gauges++
		default:
			s.Histograms++
		}
	}
	return s
}

// String renders the stats as one line.
func (s Stats) String() string {
	nfs := make([]string, 0, len(s.PerNF))
	for nf := range s.PerNF {
		nfs = append(nfs, nf)
	}
	sort.Strings(nfs)
	parts := make([]string, 0, len(nfs))
	for _, nf := range nfs {
		parts = append(parts, fmt.Sprintf("%s=%d", nf, s.PerNF[nf]))
	}
	return fmt.Sprintf("%d metrics (%d counters, %d gauges, %d histogram series), %d functions [%s]",
		s.Metrics, s.Counters, s.Gauges, s.Histograms, s.Functions, strings.Join(parts, " "))
}
