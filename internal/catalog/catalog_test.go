package catalog

import (
	"strings"
	"testing"
)

func TestGenerateCount(t *testing.T) {
	db := Generate()
	s := db.Stats()
	t.Log(s)
	if s.Metrics < 3000 {
		t.Errorf("catalog has %d metrics, the paper requires >3000", s.Metrics)
	}
	// All six NFs of §4 are covered.
	for _, nf := range NFNames() {
		if s.PerNF[nf] == 0 {
			t.Errorf("no metrics for NF %s", nf)
		}
	}
	if s.Functions < 10 {
		t.Errorf("only %d bespoke functions", s.Functions)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(), Generate()
	if len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("metric counts differ: %d vs %d", len(a.Metrics), len(b.Metrics))
	}
	for i := range a.Metrics {
		if a.Metrics[i].Name != b.Metrics[i].Name || a.Metrics[i].Description != b.Metrics[i].Description {
			t.Fatalf("metric %d differs between generations", i)
		}
	}
}

func TestMetricNamesUnique(t *testing.T) {
	db := Generate()
	seen := make(map[string]bool, len(db.Metrics))
	for _, m := range db.Metrics {
		if seen[m.Name] {
			t.Errorf("duplicate metric name %s", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestPaperExampleMetricExists(t *testing.T) {
	db := Generate()
	// The paper's §3.1 example.
	m, ok := db.Lookup("amfcc_n1_auth_request")
	if !ok {
		t.Fatal("amfcc_n1_auth_request missing")
	}
	for _, want := range []string{"authentication requests sent by AMF", "AUTHENTICATION REQUEST", "3GPP TS 24.501", "64-bit counter"} {
		if !strings.Contains(m.Description, want) {
			t.Errorf("description missing %q: %s", want, m.Description)
		}
	}
	// The paper's §4.2.3 example: the LCS NI-LR metrics use full-form
	// names (which is why DIN-SQL's compositional guess fails).
	if _, ok := db.Lookup("amfcc_lcs_network_induced_location_request_success"); !ok {
		t.Error("LCS NI-LR success metric missing")
	}
	if _, ok := db.Lookup("amfcc_lcs_ni_lr_success"); ok {
		t.Error("the abbreviated LCS name should NOT exist (it is DIN-SQL's wrong guess)")
	}
}

func TestProcedureFamilies(t *testing.T) {
	db := Generate()
	for _, p := range Procedures()[:10] {
		fam := db.ProcedureMetrics(p.NF, p.Service, p.Slug)
		// 8 lifecycle + 10 failure causes + 6 reject causes + 3 histogram.
		want := len(CounterVariants) + len(FailureCauses) + len(RejectCauses) + 3
		if len(fam) != want {
			t.Errorf("procedure %s has %d metrics, want %d", p.Slug, len(fam), want)
		}
		for _, v := range CounterVariants {
			if _, ok := db.Lookup(p.MetricName(v)); !ok {
				t.Errorf("missing %s", p.MetricName(v))
			}
		}
	}
}

func TestDescriptionsAreComplete(t *testing.T) {
	db := Generate()
	for _, m := range db.Metrics {
		if m.Description == "" {
			t.Fatalf("metric %s has no description", m.Name)
		}
		if m.NF == "" {
			t.Fatalf("metric %s has no NF", m.Name)
		}
		if len(m.Labels) == 0 {
			t.Fatalf("metric %s has no label dimensions", m.Name)
		}
	}
}

func TestDocumentsSegmentation(t *testing.T) {
	db := Generate()
	docs := db.Documents()
	if len(docs) != len(db.Metrics)+len(db.Functions) {
		t.Fatalf("got %d documents, want %d", len(docs), len(db.Metrics)+len(db.Functions))
	}
	// Each metric doc leads with its name (the segmentation of §4).
	for _, d := range docs[:50] {
		if d.Metric != nil && !strings.HasPrefix(d.Text, d.Metric.Name+": ") {
			t.Errorf("doc %s text does not lead with the name", d.ID)
		}
	}
}

func TestBespokeFunctions(t *testing.T) {
	for _, f := range BespokeFunctions() {
		if f.Author == "" {
			t.Errorf("function %s has no expert attribution", f.Name)
		}
		args := make([]string, f.Arity)
		for i := range args {
			args[i] = "m" + string(rune('0'+i))
		}
		q, err := f.Expand(args...)
		if err != nil || q == "" {
			t.Errorf("function %s does not expand: %v", f.Name, err)
		}
		if _, err := f.Expand(); f.Arity > 0 && err == nil {
			t.Errorf("function %s accepted wrong arity", f.Name)
		}
	}
}

func TestLookupFunction(t *testing.T) {
	db := Generate()
	f, ok := db.LookupFunction("procedure_success_rate")
	if !ok {
		t.Fatal("procedure_success_rate missing")
	}
	q, err := f.Expand("a_success", "a_attempt")
	if err != nil {
		t.Fatal(err)
	}
	if q != "100 * sum(a_success) / sum(a_attempt)" {
		t.Errorf("expanded = %q", q)
	}
	if _, ok := db.LookupFunction("nope"); ok {
		t.Error("unexpected function hit")
	}
}

func TestAddExpertMetricDocExisting(t *testing.T) {
	db := Generate()
	before, _ := db.Lookup("amfmm_paging_attempt")
	origLen := len(before.Description)
	m := db.AddExpertMetricDoc("amfmm_paging_attempt", "Paging storm indicator.", "r.nakamura")
	if m.Expert != "r.nakamura" {
		t.Errorf("expert attribution missing: %+v", m)
	}
	if !strings.HasPrefix(m.Description, "Paging storm indicator.") {
		t.Errorf("expert note should lead the description: %s", m.Description[:60])
	}
	if len(m.Description) <= origLen {
		t.Error("description did not grow")
	}
}

func TestAddExpertMetricDocNew(t *testing.T) {
	db := Generate()
	n := len(db.Metrics)
	m := db.AddExpertMetricDoc("brand_new_metric", "An expert-defined entity.", "a.kimura")
	if len(db.Metrics) != n+1 {
		t.Error("new metric not appended")
	}
	if got, ok := db.Lookup("brand_new_metric"); !ok || got != m {
		t.Error("new metric not indexed")
	}
}

func TestGaugeAndProcedureQuestionsNonEmpty(t *testing.T) {
	for _, p := range Procedures() {
		if len(p.Questions) == 0 {
			t.Errorf("procedure %s has no question phrasings", p.Slug)
		}
		if p.Message == "" || p.Spec == "" {
			t.Errorf("procedure %s missing message/spec", p.Slug)
		}
	}
	for _, g := range Gauges() {
		if len(g.Questions) == 0 {
			t.Errorf("gauge %s has no question phrasings", g.Slug)
		}
	}
}

func TestMetricTypeStrings(t *testing.T) {
	if Counter.String() != "64-bit counter" || Gauge.String() != "gauge" {
		t.Error("metric type strings wrong")
	}
	if MetricTypeSentence(Gauge) != "Gauge." {
		t.Error("type sentence wrong")
	}
}

func TestStatsString(t *testing.T) {
	s := Generate().Stats().String()
	for _, want := range []string{"metrics", "functions", "amf="} {
		if !strings.Contains(s, want) {
			t.Errorf("stats string missing %q: %s", want, s)
		}
	}
}

func TestSelfMetrics(t *testing.T) {
	db := Generate()
	before := len(db.Metrics)
	added := db.AddSelfMetrics()
	if added == 0 || len(db.Metrics) != before+added {
		t.Fatalf("AddSelfMetrics added %d entries (catalog %d -> %d)", added, before, len(db.Metrics))
	}
	for _, name := range []string{
		"dio_ask_total", "dio_ask_duration_seconds_bucket",
		"dio_ask_duration_seconds_sum", "dio_ask_duration_seconds_count",
		"dio_http_requests_total", "dio_feedback_issues",
	} {
		m, ok := db.Lookup(name)
		if !ok {
			t.Errorf("self-metric %s not registered", name)
			continue
		}
		if m.NF != "dio" {
			t.Errorf("%s: NF = %q, want dio", name, m.NF)
		}
		if m.Description == "" {
			t.Errorf("%s: empty description", name)
		}
	}
	if m, _ := db.Lookup("dio_ask_duration_seconds_bucket"); m != nil && m.Type != HistogramBucket {
		t.Errorf("bucket series has type %v, want HistogramBucket", m.Type)
	}
	// Idempotent: a second call adds nothing.
	if again := db.AddSelfMetrics(); again != 0 {
		t.Errorf("second AddSelfMetrics added %d entries, want 0", again)
	}
}
