// Package tenant defines the tenant identity threaded through the
// serving path: httpapi extracts it from the request, stamps it into the
// context, and every layer below (admission gate, answer cache, retrieval
// cache, catalog overlays, replica router, slow-query log) keys on it.
//
// The package is intentionally a leaf — stdlib only — so servecache, core,
// catalog, promql and httpapi can all import it without cycles.
//
// Requests without identity run as the Default tenant, which preserves the
// single-tenant behaviour (and byte-identical responses) of the
// pre-tenancy serving path.
package tenant

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Default is the tenant requests run as when no identity is supplied —
// the back-compat single-tenant world.
const Default = "default"

// Overflow is the metric label tenants collapse to once a LabelCapper's
// cardinality bound is reached.
const Overflow = "other"

// maxIDLen bounds wire-supplied tenant identifiers.
const maxIDLen = 64

type ctxKey struct{}

// WithID returns ctx carrying the tenant identity. An empty id maps to
// Default.
func WithID(ctx context.Context, id string) context.Context {
	if id == "" {
		id = Default
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// From returns the tenant identity carried by ctx, or Default when the
// context carries none.
func From(ctx context.Context) string {
	if id, ok := ctx.Value(ctxKey{}).(string); ok && id != "" {
		return id
	}
	return Default
}

// Normalize canonicalises a wire-supplied tenant identifier: lower-cased,
// trimmed, restricted to [a-z0-9._-] (anything else becomes '-') and
// truncated to 64 bytes. It returns "" for an empty input so callers can
// fall through to token mapping or the default tenant.
func Normalize(id string) string {
	id = strings.ToLower(strings.TrimSpace(id))
	if id == "" {
		return ""
	}
	if len(id) > maxIDLen {
		id = id[:maxIDLen]
	}
	var b strings.Builder
	b.Grow(len(id))
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Quota bounds one tenant's admission to the expensive ask pipeline.
// The zero value is an unlimited quota with weight 1.
type Quota struct {
	// Rate is the sustained request budget in requests/second refilled
	// into the tenant's token bucket; <= 0 means unlimited (no bucket).
	Rate float64
	// Burst is the bucket capacity — how many requests may arrive
	// back-to-back before the rate applies; <= 0 defaults to
	// max(Rate, 1).
	Burst float64
	// Weight is the tenant's deficit-round-robin share of admission
	// slots when the gate queues; < 1 is treated as 1.
	Weight int
}

// Unlimited reports whether the quota imposes no token bucket.
func (q Quota) Unlimited() bool { return q.Rate <= 0 }

// NormWeight returns the effective DRR weight (at least 1).
func (q Quota) NormWeight() int {
	if q.Weight < 1 {
		return 1
	}
	return q.Weight
}

// NormBurst returns the effective bucket capacity.
func (q Quota) NormBurst() float64 {
	if q.Burst > 0 {
		return q.Burst
	}
	if q.Rate > 1 {
		return q.Rate
	}
	return 1
}

// ParseQuotas parses a -tenant-quotas flag value. The spec is a
// comma-separated list of tenant=rate[:burst[:weight]] entries, e.g.
//
//	"default=50,acme=200:400:4,probe=10:10"
//
// Rate is requests/second (0 = unlimited), burst defaults to max(rate, 1)
// and weight to 1. The "*" tenant sets the default quota for tenants not
// named in the spec.
func ParseQuotas(spec string) (map[string]Quota, error) {
	out := make(map[string]Quota)
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("tenant: quota entry %q: want tenant=rate[:burst[:weight]]", part)
		}
		id := strings.TrimSpace(name)
		if id != "*" {
			id = Normalize(id)
		}
		if id == "" {
			return nil, fmt.Errorf("tenant: quota entry %q: empty tenant", part)
		}
		fields := strings.Split(val, ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("tenant: quota entry %q: too many fields", part)
		}
		var q Quota
		var err error
		if q.Rate, err = strconv.ParseFloat(strings.TrimSpace(fields[0]), 64); err != nil {
			return nil, fmt.Errorf("tenant: quota entry %q: bad rate: %w", part, err)
		}
		if len(fields) > 1 {
			if q.Burst, err = strconv.ParseFloat(strings.TrimSpace(fields[1]), 64); err != nil {
				return nil, fmt.Errorf("tenant: quota entry %q: bad burst: %w", part, err)
			}
		}
		if len(fields) > 2 {
			if q.Weight, err = strconv.Atoi(strings.TrimSpace(fields[2])); err != nil {
				return nil, fmt.Errorf("tenant: quota entry %q: bad weight: %w", part, err)
			}
		}
		out[id] = q
	}
	return out, nil
}

// FormatQuotas renders a quota map back into the flag syntax, tenants
// sorted (logs and tests).
func FormatQuotas(m map[string]Quota) string {
	names := make([]string, 0, len(m))
	for id := range m {
		names = append(names, id)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, id := range names {
		q := m[id]
		parts = append(parts, fmt.Sprintf("%s=%g:%g:%d", id, q.Rate, q.NormBurst(), q.NormWeight()))
	}
	return strings.Join(parts, ",")
}

// LabelCapper bounds the cardinality of tenant-labelled metrics: the
// first max distinct tenants keep their own label value, later ones
// collapse to Overflow. The Default tenant always passes. Safe for
// concurrent use.
type LabelCapper struct {
	mu   sync.Mutex
	max  int
	seen map[string]struct{}
}

// NewLabelCapper returns a capper admitting max distinct tenant labels
// (minimum 1; Default does not count against the budget).
func NewLabelCapper(max int) *LabelCapper {
	if max < 1 {
		max = 1
	}
	return &LabelCapper{max: max, seen: make(map[string]struct{})}
}

// Label returns the metric label value for a tenant: the tenant itself
// while the cardinality budget lasts, Overflow afterwards.
func (c *LabelCapper) Label(id string) string {
	if id == Default {
		return id
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.seen[id]; ok {
		return id
	}
	if len(c.seen) >= c.max {
		return Overflow
	}
	c.seen[id] = struct{}{}
	return id
}
