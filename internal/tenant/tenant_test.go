package tenant

import (
	"context"
	"testing"
)

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := From(ctx); got != Default {
		t.Fatalf("From(empty ctx) = %q, want %q", got, Default)
	}
	ctx = WithID(ctx, "acme")
	if got := From(ctx); got != "acme" {
		t.Fatalf("From = %q, want acme", got)
	}
	if got := From(WithID(context.Background(), "")); got != Default {
		t.Fatalf("From(WithID empty) = %q, want %q", got, Default)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"  Acme  ", "acme"},
		{"Team/42", "team-42"},
		{"ok_name.v2-x", "ok_name.v2-x"},
		{"Ümlaut", "--mlaut"}, // Ü is two UTF-8 bytes, each mapped to '-'
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'a'
	}
	if got := Normalize(string(long)); len(got) != maxIDLen {
		t.Errorf("Normalize(long) length = %d, want %d", len(got), maxIDLen)
	}
}

func TestParseQuotas(t *testing.T) {
	m, err := ParseQuotas("default=50, acme=200:400:4 ,probe=10:10,*=5")
	if err != nil {
		t.Fatal(err)
	}
	if q := m["acme"]; q.Rate != 200 || q.Burst != 400 || q.Weight != 4 {
		t.Fatalf("acme quota = %+v", q)
	}
	if q := m["default"]; q.Rate != 50 || q.NormBurst() != 50 || q.NormWeight() != 1 {
		t.Fatalf("default quota = %+v", q)
	}
	if q := m["probe"]; q.NormBurst() != 10 {
		t.Fatalf("probe burst = %+v", q)
	}
	if q, ok := m["*"]; !ok || q.Rate != 5 {
		t.Fatalf("wildcard quota = %+v ok=%v", q, ok)
	}
	if m2, err := ParseQuotas("  "); err != nil || len(m2) != 0 {
		t.Fatalf("empty spec: %v %v", m2, err)
	}
	for _, bad := range []string{"acme", "acme=x", "acme=1:y", "acme=1:2:z", "=1", "acme=1:2:3:4"} {
		if _, err := ParseQuotas(bad); err == nil {
			t.Errorf("ParseQuotas(%q) succeeded, want error", bad)
		}
	}
}

func TestQuotaDefaults(t *testing.T) {
	var q Quota
	if !q.Unlimited() || q.NormWeight() != 1 || q.NormBurst() != 1 {
		t.Fatalf("zero quota: unlimited=%v weight=%d burst=%g", q.Unlimited(), q.NormWeight(), q.NormBurst())
	}
	q = Quota{Rate: 8}
	if q.Unlimited() || q.NormBurst() != 8 {
		t.Fatalf("rate-only quota: %+v burst=%g", q, q.NormBurst())
	}
}

func TestLabelCapper(t *testing.T) {
	c := NewLabelCapper(2)
	if got := c.Label("a"); got != "a" {
		t.Fatalf("first label = %q", got)
	}
	if got := c.Label("b"); got != "b" {
		t.Fatalf("second label = %q", got)
	}
	if got := c.Label("c"); got != Overflow {
		t.Fatalf("over-cap label = %q, want %q", got, Overflow)
	}
	if got := c.Label("a"); got != "a" {
		t.Fatalf("seen label after cap = %q", got)
	}
	if got := c.Label(Default); got != Default {
		t.Fatalf("default label = %q", got)
	}
}
