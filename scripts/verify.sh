#!/bin/sh
# verify.sh — the checks a change must pass before merging:
# static vetting plus the full test suite under the race detector.
set -eu
cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> go test -race ./..."
go test -race ./...

echo ">> go test ./... with DIO_TSDB_SHARDS=4 (distributed executor leg)"
DIO_TSDB_SHARDS=4 go test ./internal/promql/ ./internal/tsdb/ ./internal/ingest/

echo ">> go test ./internal/promql/ with DIO_PROMQL_NOPOOL=1 (arena pooling off leg)"
DIO_PROMQL_NOPOOL=1 go test ./internal/promql/

echo ">> tenant-aware suites with DIO_REPLICAS=4 (multi-tenant serving leg)"
DIO_REPLICAS=4 go test ./internal/servecache/ ./internal/httpapi/ ./internal/router/ ./internal/tenant/

# Opt-in: substrate micro-benchmarks with allocation reporting, plus the
# perf gates — the plan-based executor must hold >= 1.5x over the legacy
# evaluator on the dashboard query mix, and the durable ingest path must
# sustain its remote-write floor while acknowledged samples survive a
# crash (VERIFY_BENCH=1 make verify).
if [ "${VERIFY_BENCH:-0}" = "1" ]; then
	echo ">> make bench (VERIFY_BENCH=1)"
	make bench
	echo ">> dio-bench engine gate (VERIFY_BENCH=1)"
	go run ./cmd/dio-bench -experiment engine -short
	echo ">> dio-bench querystats gate (VERIFY_BENCH=1)"
	go run ./cmd/dio-bench -experiment querystats -short
	echo ">> dio-bench ingest gate (VERIFY_BENCH=1)"
	go run ./cmd/dio-bench -experiment ingest -short
	echo ">> dio-bench shard scaling curve (VERIFY_BENCH=1)"
	go run ./cmd/dio-bench -experiment shard -short
	echo ">> dio-bench batch gate (VERIFY_BENCH=1)"
	go run ./cmd/dio-bench -experiment batch -short
	echo ">> dio-bench multitenant gate (VERIFY_BENCH=1)"
	go run ./cmd/dio-bench -experiment multitenant -short
	echo ">> crash-recovery smoke (VERIFY_BENCH=1)"
	./scripts/crash_smoke.sh
	echo ">> crash-recovery smoke, 4-shard store (VERIFY_BENCH=1)"
	CRASH_SMOKE_SHARDS=4 CRASH_SMOKE_PORT=18081 ./scripts/crash_smoke.sh
fi

echo "verify: OK"
