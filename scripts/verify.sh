#!/bin/sh
# verify.sh — the checks a change must pass before merging:
# static vetting plus the full test suite under the race detector.
set -eu
cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> go test -race ./..."
go test -race ./...

echo "verify: OK"
