#!/usr/bin/env bash
# crash_smoke.sh — end-to-end crash-recovery smoke test for durable ingest.
#
# Starts dio-server with a durable data dir, pushes samples through
# POST /api/v1/write, SIGKILLs the server after the writes are
# acknowledged, restarts it from the same dir, and asserts the
# acknowledged samples survived (WAL replay / checkpoint recovery).
#
# Acknowledged-then-lost data is the one failure mode this guards:
# the server must never 200 a write that a kill -9 can erase.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${CRASH_SMOKE_PORT:-18080}"
# CRASH_SMOKE_SHARDS > 1 runs the same smoke against the sharded store:
# per-shard checkpoint sets plus the fan-in WAL must give the same
# acknowledged-write-survives-kill-9 guarantee.
SHARDS="${CRASH_SMOKE_SHARDS:-1}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "crash_smoke: FAIL: $*" >&2
    echo "--- server log tail ---" >&2
    tail -n 20 "$WORK/server.log" >&2 || true
    exit 1
}

start_server() {
    ./bin/dio-server -addr "127.0.0.1:${PORT}" -data-dir "$WORK/store" \
        -duration 10m -selfscrape=false -wal-fsync-interval 5ms \
        -tsdb-shards "$SHARDS" \
        >>"$WORK/server.log" 2>&1 &
    SERVER_PID=$!
    # First boot simulates a 10m workload and trains the retriever;
    # restarts replay the WAL. Both finish well inside this window.
    for _ in $(seq 1 240); do
        if curl -fsS -o /dev/null "$BASE/healthz" 2>/dev/null; then
            return 0
        fi
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
        sleep 0.5
    done
    fail "server did not become healthy"
}

echo "crash_smoke: building dio-server"
mkdir -p bin
go build -o bin/dio-server ./cmd/dio-server

echo "crash_smoke: first start (seeds the store)"
start_server

echo "crash_smoke: pushing samples via /api/v1/write"
RESP="$(curl -fsS -X POST -H 'Content-Type: application/json' -d '{
  "series": [{
    "labels": {"__name__": "crash_smoke_total", "job": "smoke"},
    "samples": [[1700000000000, 1], [1700000015000, 2], [1700000030000, 3]]
  }]
}' "$BASE/api/v1/write")" || fail "write request failed"
echo "crash_smoke: write response: $RESP"
echo "$RESP" | grep -q '"appended":3' || fail "expected 3 appended samples: $RESP"

echo "crash_smoke: SIGKILL pid $SERVER_PID (no shutdown checkpoint)"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "crash_smoke: restart from $WORK/store"
start_server

echo "crash_smoke: querying the acknowledged samples back"
GOT="$(curl -fsS "$BASE/api/v1/query?query=crash_smoke_total&time=1700000030")" \
    || fail "query request failed"
echo "crash_smoke: query response: $GOT"
echo "$GOT" | grep -q '"3"' || fail "acknowledged sample lost after kill -9: $GOT"
grep -q 'wal_samples_replayed' "$WORK/server.log" || fail "restart did not report WAL replay"

echo "crash_smoke: PASS (acknowledged writes survived kill -9)"
