// Package dio's root benchmark harness: one testing.B benchmark per table
// and figure of the paper (§4), plus substrate micro-benchmarks. The
// per-experiment benchmarks report execution accuracy (EX%) and cost as
// custom metrics, so `go test -bench=. -benchmem` regenerates the paper's
// evaluation alongside performance numbers:
//
//	BenchmarkTable3a_DIOCopilot    — paper: EX 66%
//	BenchmarkTable3a_DINSQL        — paper: EX 48%
//	BenchmarkTable3a_GPT4Direct    — paper: EX 12%
//	BenchmarkTable3b_GPT4          — paper: EX 66%
//	BenchmarkTable3b_GPT35Turbo    — paper: EX 46%
//	BenchmarkTable3b_TextCurie001  — paper: EX 13%
//	BenchmarkFigure1_*             — the qualitative comparison
//	BenchmarkInferenceCost_*       — paper: 4.25¢ / 0.35¢ per query
package dio

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dio/internal/baselines"
	"dio/internal/benchmark"
	"dio/internal/catalog"
	"dio/internal/core"
	"dio/internal/dashboard"
	"dio/internal/embedding"
	"dio/internal/fivegsim"
	"dio/internal/llm"
	"dio/internal/promql"
	"dio/internal/sandbox"
	"dio/internal/tsdb"
	"dio/internal/vecstore"
)

// benchEnv is the shared expensive fixture: catalog, populated trace,
// benchmark dataset, evaluator and a trained retriever.
type benchEnv struct {
	cat       *catalog.Database
	db        *tsdb.DB
	items     []benchmark.Item
	eval      *benchmark.Evaluator
	retriever *core.Retriever
}

var (
	envOnce sync.Once
	envVal  *benchEnv
	envErr  error
)

func env(b *testing.B) *benchEnv {
	b.Helper()
	envOnce.Do(func() {
		cat := catalog.Generate()
		db := tsdb.New()
		cfg := fivegsim.DefaultConfig()
		if _, err := fivegsim.Populate(db, cat, cfg); err != nil {
			envErr = err
			return
		}
		items, err := benchmark.Generate(cat, benchmark.DefaultSize, 7)
		if err != nil {
			envErr = err
			return
		}
		eval, err := benchmark.NewEvaluator(db)
		if err != nil {
			envErr = err
			return
		}
		retriever, err := core.NewRetriever(cat, nil)
		if err != nil {
			envErr = err
			return
		}
		envVal = &benchEnv{cat: cat, db: db, items: items, eval: eval, retriever: retriever}
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

func (e *benchEnv) dio(b *testing.B, model string) *baselines.DIOAdapter {
	b.Helper()
	cp, err := core.New(core.Config{Catalog: e.cat, TSDB: e.db, Model: llm.MustNew(model), Retriever: e.retriever})
	if err != nil {
		b.Fatal(err)
	}
	return &baselines.DIOAdapter{Copilot: cp}
}

// runEX evaluates the system over the full 200-question benchmark once per
// iteration and reports EX% and ¢/query as benchmark metrics.
func runEX(b *testing.B, sys baselines.QuerySystem) {
	e := env(b)
	ctx := context.Background()
	var last *benchmark.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.eval.Evaluate(ctx, sys, e.items)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	b.ReportMetric(last.EX(), "EX%")
	b.ReportMetric(last.MeanCostCents, "¢/query")
	b.ReportMetric(float64(last.Total), "questions")
}

// --- Table 3a: end-to-end comparison (paper: 66 / 48 / 12) ----------------

func BenchmarkTable3a_DIOCopilot(b *testing.B) {
	runEX(b, env(b).dio(b, "gpt-4"))
}

func BenchmarkTable3a_DINSQL(b *testing.B) {
	e := env(b)
	runEX(b, baselines.NewDINSQL(e.cat, llm.MustNew("gpt-4"), 600, 11))
}

func BenchmarkTable3a_GPT4Direct(b *testing.B) {
	e := env(b)
	runEX(b, baselines.NewDirect(e.cat, llm.MustNew("gpt-4"), 600, 11))
}

// --- Table 3b: foundation-model ablation (paper: 66 / 46 / 13) -------------

func BenchmarkTable3b_GPT4(b *testing.B) {
	runEX(b, env(b).dio(b, "gpt-4"))
}

func BenchmarkTable3b_GPT35Turbo(b *testing.B) {
	runEX(b, env(b).dio(b, "gpt-3.5-turbo"))
}

func BenchmarkTable3b_TextCurie001(b *testing.B) {
	runEX(b, env(b).dio(b, "text-curie-001"))
}

// --- Figure 1: qualitative comparison ---------------------------------------

// BenchmarkFigure1_ChatGPT measures the raw chat model's (non-)answer to
// the PDU-session question with no operator context.
func BenchmarkFigure1_ChatGPT(b *testing.B) {
	model := llm.MustNew("gpt-4")
	for i := 0; i < b.N; i++ {
		_, err := model.Complete(llm.Request{
			Kind:   llm.KindAnswerDirect,
			Prompt: &llm.Prompt{Question: "How many PDU sessions are currently active?"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1_DIOCopilot measures the full pipeline answering the
// same question, reporting the per-question cost.
func BenchmarkFigure1_DIOCopilot(b *testing.B) {
	dio := env(b).dio(b, "gpt-4")
	ctx := context.Background()
	var cost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := dio.Copilot.Ask(ctx, "How many PDU sessions are currently active?")
		if err != nil {
			b.Fatal(err)
		}
		if ans.ExecErr != nil {
			b.Fatal(ans.ExecErr)
		}
		cost = ans.CostCents
	}
	b.StopTimer()
	b.ReportMetric(cost, "¢/query")
}

// --- §4.2.5: inference cost (paper: 4.25¢ GPT-4, 0.35¢ GPT-3.5-turbo) -------

func BenchmarkInferenceCost_GPT4(b *testing.B)       { runEX(b, env(b).dio(b, "gpt-4")) }
func BenchmarkInferenceCost_GPT35Turbo(b *testing.B) { runEX(b, env(b).dio(b, "gpt-3.5-turbo")) }

// --- Ablation benches (extensions) ------------------------------------------

// BenchmarkAblation_ContextSize sweeps the top-K context size.
func BenchmarkAblation_ContextSize(b *testing.B) {
	e := env(b)
	for _, k := range []int{5, 15, 29, 60} {
		b.Run(fmt.Sprintf("topK=%d", k), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.TopK = k
			cp, err := core.New(core.Config{Catalog: e.cat, TSDB: e.db, Model: llm.MustNew("gpt-4"), Retriever: e.retriever, Options: opts})
			if err != nil {
				b.Fatal(err)
			}
			runEX(b, &baselines.DIOAdapter{Copilot: cp})
		})
	}
}

// BenchmarkAblation_FewShot sweeps the number of few-shot examples.
func BenchmarkAblation_FewShot(b *testing.B) {
	e := env(b)
	for _, n := range []int{0, 10, 20} {
		b.Run(fmt.Sprintf("fewshot=%d", n), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.FewShot = n
			cp, err := core.New(core.Config{Catalog: e.cat, TSDB: e.db, Model: llm.MustNew("gpt-4"), Retriever: e.retriever, Options: opts})
			if err != nil {
				b.Fatal(err)
			}
			runEX(b, &baselines.DIOAdapter{Copilot: cp})
		})
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

func BenchmarkEmbeddingEmbed(b *testing.B) {
	e := env(b)
	m := e.retriever.EmbeddingModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Embed("What is the initial registration success rate at the AMF?")
	}
}

func BenchmarkRetrieverRetrieve(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.retriever.Retrieve("How many PDU sessions are currently active?", 29)
	}
}

func BenchmarkVecstoreFlatSearch(b *testing.B) {
	e := env(b)
	m := e.retriever.EmbeddingModel()
	flat := vecstore.NewFlat(m.Dim())
	for _, d := range e.cat.Documents() {
		if err := flat.Add(d.ID, m.Embed(d.Text)); err != nil {
			b.Fatal(err)
		}
	}
	q := m.Embed("PDU session establishment failures")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat.Search(q, 29)
	}
}

func BenchmarkVecstoreIVFSearch(b *testing.B) {
	e := env(b)
	m := e.retriever.EmbeddingModel()
	ivf := vecstore.NewIVF(m.Dim(), 64, 8, 3)
	for _, d := range e.cat.Documents() {
		if err := ivf.Add(d.ID, m.Embed(d.Text)); err != nil {
			b.Fatal(err)
		}
	}
	if err := ivf.Build(10); err != nil {
		b.Fatal(err)
	}
	q := m.Embed("PDU session establishment failures")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ivf.Search(q, 29)
	}
}

func BenchmarkPromQLSimpleSum(b *testing.B) {
	e := env(b)
	ex := sandbox.New(e.db, sandbox.DefaultLimits())
	at := e.eval.At()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(ctx, "sum(smfsm_pdu_sessions_active)", at); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPromQLRateAggregation(b *testing.B) {
	e := env(b)
	ex := sandbox.New(e.db, sandbox.DefaultLimits())
	at := e.eval.At()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(ctx, "sum(rate(amfcc_initial_registration_attempt[5m]))", at); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPromQLParse(b *testing.B) {
	const q = "100 * sum(rate(amfcc_n1_auth_success[5m])) / sum(rate(amfcc_n1_auth_attempt[5m]))"
	for i := 0; i < b.N; i++ {
		if _, err := promql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTSDBAppend(b *testing.B) {
	db := tsdb.New()
	ls := tsdb.FromMap(map[string]string{"__name__": "bench_metric", "instance": "a"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Append(ls, int64(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorPopulate(b *testing.B) {
	cat := catalog.Generate()
	cfg := fivegsim.DefaultConfig()
	cfg.Duration = 5 * time.Minute
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := tsdb.New()
		if _, err := fivegsim.Populate(db, cat, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCopilotAsk(b *testing.B) {
	dio := env(b).dio(b, "gpt-4")
	ctx := context.Background()
	questions := []string{
		"How many PDU sessions are currently active?",
		"What is the initial registration success rate?",
		"What is the rate of paging attempts per second?",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dio.Copilot.Ask(ctx, questions[i%len(questions)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbeddingTrain(b *testing.B) {
	e := env(b)
	docs := e.cat.Documents()
	corpus := make([]string, len(docs))
	for i, d := range docs {
		corpus[i] = d.Text
	}
	lex := embedding.DomainLexicon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		embedding.Train(corpus, lex, embedding.DefaultOptions())
	}
}

func BenchmarkVecstoreHNSWSearch(b *testing.B) {
	e := env(b)
	m := e.retriever.EmbeddingModel()
	h := vecstore.NewHNSW(m.Dim(), 16, 128, 96, 3)
	for _, d := range e.cat.Documents() {
		if err := h.Add(d.ID, m.Embed(d.Text)); err != nil {
			b.Fatal(err)
		}
	}
	q := m.Embed("PDU session establishment failures")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Search(q, 29)
	}
}

// --- Select-once range evaluation benches (PR 2) -----------------------------

// rangeBenchDB builds the ~100-series × 200-step workload of the range
// evaluation benchmarks: one counter metric across 100 instances, sampled
// every 15s for 200 minutes.
func rangeBenchDB(b *testing.B) (*tsdb.DB, time.Time, time.Time) {
	b.Helper()
	db := tsdb.New()
	base := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	const (
		instances = 100
		minutes   = 200
	)
	for inst := 0; inst < instances; inst++ {
		ls := tsdb.FromMap(map[string]string{
			"__name__": "bench_requests_total",
			"instance": fmt.Sprintf("i%02d", inst),
			"nf":       "amf",
		})
		for s := 0; s <= minutes*4; s++ { // 15s scrapes
			t := base.Add(time.Duration(s) * 15 * time.Second)
			if err := db.Append(ls, t.UnixMilli(), float64(s*(inst+1))); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db, base, base.Add(minutes * time.Minute)
}

// BenchmarkQueryRange compares select-once cursor evaluation against the
// legacy stepwise path (full storage selection per step) on 195-step range
// queries over 100 series: a plain selector (the gauge-panel shape) and a
// rate aggregation (the counter-panel shape).
func BenchmarkQueryRange(b *testing.B) {
	db, start, end := rangeBenchDB(b)
	queries := []struct{ name, q string }{
		{"selector", "bench_requests_total"},
		{"rate", "sum by (nf) (rate(bench_requests_total[5m]))"},
	}
	for _, query := range queries {
		for _, mode := range []struct {
			name     string
			stepwise bool
		}{{"select-once", false}, {"stepwise", true}} {
			b.Run(query.name+"/"+mode.name, func(b *testing.B) {
				opts := promql.DefaultEngineOptions()
				opts.StepwiseRange = mode.stepwise
				eng := promql.NewEngine(db, opts)
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.QueryRange(ctx, query.q, start.Add(5*time.Minute), end, time.Minute); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSelect compares one-shot instant selection (copying points)
// against the batched zero-copy SelectSeries fetch, using a label-only
// matcher — the case that used to allocate and sort every store key.
func BenchmarkSelect(b *testing.B) {
	db, _, end := rangeBenchDB(b)
	m, err := tsdb.NewMatcher(tsdb.MatchEqual, "nf", "amf")
	if err != nil {
		b.Fatal(err)
	}
	matchers := []*tsdb.Matcher{m}
	ts := end.UnixMilli()
	b.Run("Select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pts := db.Select(matchers, ts, 300_000); len(pts) != 100 {
				b.Fatalf("selected %d series", len(pts))
			}
		}
	})
	b.Run("SelectSeries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if views := db.SelectSeries(matchers); len(views) != 100 {
				b.Fatalf("selected %d series", len(views))
			}
		}
	})
}

// BenchmarkDashboardRender compares serial and parallel panel evaluation
// over an 8-panel dashboard on the range-bench store.
func BenchmarkDashboardRender(b *testing.B) {
	db, _, end := rangeBenchDB(b)
	ex := sandbox.New(db, sandbox.DefaultLimits())
	d := &dashboard.Dashboard{Title: "bench"}
	for p := 0; p < 8; p++ {
		d.Panels = append(d.Panels, dashboard.Panel{
			Title: fmt.Sprintf("p%d", p),
			Query: fmt.Sprintf(`sum(rate(bench_requests_total{instance=~"i%d.*"}[5m]))`, p),
			Kind:  dashboard.KindTimeSeries,
		})
	}
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			r := dashboard.NewRenderer(ex, mode.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Render(ctx, d, end, 30*time.Minute, time.Minute, 40); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
