GO ?= go

.PHONY: build test verify bench bench-paper

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify runs the merge gate: vet + full suite under the race detector.
# Set VERIFY_BENCH=1 to also run the substrate micro-benchmarks.
verify:
	sh scripts/verify.sh

# bench runs the substrate micro-benchmarks (query engine, storage,
# dashboard rendering) with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkQueryRange|BenchmarkSelect$$|BenchmarkDashboardRender|BenchmarkTSDBAppend|BenchmarkPromQL' -benchmem -benchtime=20x .

# bench-paper regenerates the paper's evaluation tables alongside
# performance numbers (every benchmark, one iteration each).
bench-paper:
	$(GO) test -bench=. -benchtime=1x .
