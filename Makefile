GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify runs the merge gate: vet + full suite under the race detector.
verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchtime=1x .
