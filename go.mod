module dio

go 1.22
